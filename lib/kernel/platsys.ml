module Coherent = Platinum_core.Coherent
module Memtxn = Platinum_core.Memtxn
module Cmap = Platinum_core.Cmap
module Rights = Platinum_core.Rights
module Addr_space = Platinum_vm.Addr_space
module Memobj = Platinum_vm.Memobj
module Zone = Platinum_vm.Zone
module Xbar = Platinum_machine.Xbar
module Machine = Platinum_machine.Machine

(* One user address space as the kernel sees it. *)
type space = {
  asp : Addr_space.t;
  cm : Cmap.t;
}

type t = {
  coh : Coherent.t;
  default_zone_pages : int;
  mutable spaces : space array;  (* index = the Memsys aspace id *)
  mutable zones : Zone.t array;
  mutable segments : Memobj.t array;  (* globally named objects *)
}

let space t aspace =
  if aspace < 0 || aspace >= Array.length t.spaces then
    invalid_arg (Printf.sprintf "Platsys: no address space %d" aspace);
  t.spaces.(aspace)

let aspace t = (space t 0).asp
let coherent t = t.coh

let zone t i =
  if i < 0 || i >= Array.length t.zones then invalid_arg (Printf.sprintf "Platsys: no zone %d" i);
  t.zones.(i)

let new_zone t ~aspace:a ~name ~pages =
  let z = Zone.create (space t a).asp ~name ~pages () in
  t.zones <- Array.append t.zones [| z |];
  Array.length t.zones - 1

let new_aspace t =
  let asp = Addr_space.create t.coh in
  let sp = { asp; cm = Addr_space.cmap asp } in
  t.spaces <- Array.append t.spaces [| sp |];
  let id = Array.length t.spaces - 1 in
  (* Each space gets a private heap zone; its handle is returned by the
     space's own Api.new_zone calls — the creation here just guarantees
     allocation works immediately.  Its handle is the current zone count. *)
  ignore (new_zone t ~aspace:id ~name:(Printf.sprintf "heap@%d" id) ~pages:t.default_zone_pages);
  id

let heap_zone_of_aspace t a =
  (* The private heap created with the space; for space 0 it is zone 0. *)
  if a = 0 then 0
  else begin
    (* zones were appended in creation order; find the heap@a zone *)
    let found = ref (-1) in
    Array.iteri
      (fun i z -> if Zone.name z = Printf.sprintf "heap@%d" a then found := i)
      t.zones;
    !found
  end

let new_segment t ~name ~pages =
  let obj = Memobj.create t.coh ~name ~npages:pages in
  t.segments <- Array.append t.segments [| obj |];
  Array.length t.segments - 1

(* Bind an existing object at the space's next free page-aligned range.
   [Addr_space.map] rejects overlaps, so probe forward from a base. *)
let map_segment t ~aspace:a ~segment =
  if segment < 0 || segment >= Array.length t.segments then
    invalid_arg (Printf.sprintf "Platsys: no segment %d" segment);
  let obj = t.segments.(segment) in
  let sp = space t a in
  let npages = Memobj.npages obj in
  let rec find_base candidate =
    match Addr_space.map sp.asp ~at_page:candidate ~obj ~rights:Rights.Read_write () with
    | () -> candidate
    | exception Invalid_argument _ -> find_base (candidate + npages + 1)
  in
  let base_page = find_base 16 in
  base_page * Coherent.page_words t.coh

(* Resolve VM faults before entering the coherent layer, so Fault.Unmapped
   never escapes into a partially-charged operation. *)
let ensure_bound _t sp ~now ~vpage =
  match Cmap.find sp.cm ~vpage with
  | Some _ -> 0
  | None -> Addr_space.fault sp.asp ~now ~vpage

(* Bind every page a transaction touches before the coherent layer runs,
   each at the time the VM work reaches it.  Memtxn.iter_pages walks pages
   in chunk order with consecutive duplicates elided, which for a
   contiguous block is exactly the old first..last page loop. *)
let ensure_txn t sp ~now txn =
  let pw = Coherent.page_words t.coh in
  let lat = ref 0 in
  Memtxn.iter_pages ~page_words:pw txn (fun vpage ->
      lat := !lat + ensure_bound t sp ~now:(now + !lat) ~vpage);
  !lat

let memsys t =
  let coh = t.coh in
  let pw = Coherent.page_words coh in
  let submit ~now ~proc ~aspace txn =
    let sp = space t aspace in
    Memtxn.validate txn;
    let l0 = ensure_txn t sp ~now txn in
    let result, l = Coherent.submit coh ~now:(now + l0) ~proc ~cmap:sp.cm txn in
    (result, l0 + l)
  in
  let advise ~now ~proc ~aspace ~vaddr ~len advice =
    let sp = space t aspace in
    let translated =
      match advice with
      | Memsys.Freeze -> Coherent.Advise_freeze
      | Memsys.Thaw -> Coherent.Advise_thaw
      | Memsys.Home m -> Coherent.Advise_home m
    in
    let len = max len 1 in
    let first = vaddr / pw and last = (vaddr + len - 1) / pw in
    let lat = ref 0 in
    for vpage = first to last do
      lat := !lat + ensure_bound t sp ~now:(now + !lat) ~vpage;
      lat := !lat + Coherent.advise coh ~now:(now + !lat) ~proc ~cmap:sp.cm ~vpage translated
    done;
    !lat
  in
  let migrate_cost ~now ~from_proc ~to_proc =
    (* Moving the thread moves its kernel stack with a block transfer
       (§2.2's circular-dependence fix). *)
    Xbar.block_copy (Coherent.config coh)
      (Machine.modules (Coherent.machine coh))
      ~now ~src:from_proc ~dst:to_proc ~words:pw
  in
  (* The coalescing fast-path ops (DESIGN.md §4g): page eligibility and
     epoch come from the coherent layer, the injection gate from the
     machine's fault plane.  [fp_probe] never raises — an out-of-range
     aspace just declines. *)
  let mach = Coherent.machine coh in
  let fastpath =
    Some
      {
        Fastpath.fp_epoch = (fun () -> Coherent.fp_epoch coh);
        fp_page_words = pw;
        fp_page_shift =
          (if pw > 0 && pw land (pw - 1) = 0 then
             let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
             log2 pw 0
           else -1);
        fp_probe =
          (fun ~proc ~aspace ~vpage ~write ->
            if aspace < 0 || aspace >= Array.length t.spaces then None
            else
              let sp = t.spaces.(aspace) in
              if Coherent.fp_page_ok coh ~proc ~cmap:sp.cm ~vpage ~write then Some sp.cm
              else None);
        fp_inject_live =
          (fun () ->
            match Machine.inject mach with
            | None -> false
            | Some inj -> Platinum_sim.Inject.rate inj > 0.0);
        fp_ok_now =
          (fun () ->
            match Machine.inject mach with
            | None -> true
            | Some inj -> not (Platinum_sim.Inject.peek_module_fault inj));
        fp_read =
          (fun ~now ~proc ~cmap ~vpage ~vaddr ->
            Coherent.fp_read coh ~now ~proc ~cmap ~vpage ~vaddr);
        fp_write =
          (fun ~now ~proc ~cmap ~vpage ~vaddr ~value ->
            Coherent.fp_write coh ~now ~proc ~cmap ~vpage ~vaddr value);
        fp_rmw =
          (fun ~now ~proc ~cmap ~vpage ~vaddr ~f ->
            Coherent.fp_rmw coh ~now ~proc ~cmap ~vpage ~vaddr f);
        fp_value = Coherent.fp_value_cell coh;
      }
  in
  {
    Memsys.page_words = pw;
    submit;
    new_aspace = (fun () -> new_aspace t);
    new_zone = (fun ~aspace ~name ~pages -> new_zone t ~aspace ~name ~pages);
    alloc =
      (fun ~zone:z ~words ~page_aligned -> Zone.alloc (zone t z) ~words ~page_aligned ());
    alloc_pages = (fun ~zone:z ~pages -> Zone.alloc_pages (zone t z) ~pages);
    new_segment = (fun ~name ~pages -> new_segment t ~name ~pages);
    map_segment = (fun ~aspace ~segment -> map_segment t ~aspace ~segment);
    advise;
    migrate_cost;
    describe =
      (fun () ->
        Printf.sprintf "platinum coherent memory (policy %s)"
          (Coherent.policy coh).Platinum_core.Policy.name);
    fastpath;
    remote = None;
  }

let create coh root_aspace ?(default_zone_pages = 4096) () =
  let sp = { asp = root_aspace; cm = Addr_space.cmap root_aspace } in
  let t = { coh; default_zone_pages; spaces = [| sp |]; zones = [||]; segments = [||] } in
  (* Zone 0: the root space's default heap. *)
  ignore (new_zone t ~aspace:0 ~name:"heap" ~pages:default_zone_pages);
  t
