(** Remote procedure calls over ports — §4.1's third option.

    When a shared structure is operated on under a lock, the data and the
    computation can be co-located three ways: execute in place with
    remote references, move the data (migration), or move the computation
    — "performing a remote procedure call...  implementations of
    languages such as Emerald on top of PLATINUM would utilize the third
    option."  This is that option as a user-level library: a server
    thread bound to the data's node executes requests that arrive through
    a port, so every data reference it makes is local.

    See [examples/three_ways.ml] for the §4.1 comparison, live. *)

type server

val serve : ?proc:int -> (int array -> int array) -> server
(** Spawn a server thread (on [proc], default wherever the round-robin
    placer puts it) executing [handler] on each request.  The handler
    runs inside the simulation and may use {!Api} freely — typically it
    reads and writes data resident on its own node. *)

val port_of : server -> Eff.port_id
(** The request port (e.g. to hand to other threads by value). *)

val call : server -> int array -> int array
(** Synchronous call: ship the arguments, block until the reply.  Under
    fault injection ({!Platinum_machine.Machine.set_inject}) a request may
    be lost in the switch; the client recovers by retransmitting after an
    exponential-backoff timeout, bounded by the plane's retry cap — a call
    always completes, it just takes longer. *)

val call_async : server -> int array -> unit -> int array
(** Fire the request immediately; the returned thunk blocks for (and
    returns) the reply when forced.  Retransmits like {!call}. *)

val shutdown : server -> unit
(** Stop the server thread (after it finishes queued requests) and join
    it. *)
