(** The effects through which simulated threads reach the kernel.

    Application code is ordinary OCaml written in direct style; every
    interaction with simulated memory, time, or kernel services performs
    one of these effects.  The kernel ({!Kernel}) installs the handler,
    charges simulated time, and resumes the continuation through the
    discrete-event engine.  Use the wrappers in {!Api} rather than
    performing these directly. *)

type thread_id = int
type port_id = int
type zone_id = int

type _ Effect.t +=
  | Access_txn : Platinum_core.Memtxn.t -> Platinum_core.Memtxn.result Effect.t
      (** one memory transaction — a word read/write, an atomic
          read-modify-write, a contiguous block, or a strided
          scatter/gather.  One kernel trap per transaction: batching is
          the hot-path optimization, and the backend guarantees the
          simulated cost equals the unbatched word-by-word stream *)
  | Compute : int -> unit Effect.t  (** spend n ns of local computation *)
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) * int option * int option -> thread_id Effect.t
      (** (body, processor hint, address-space override — None inherits
          the spawner's; a thread executes within a single address space,
          §1.1) *)
  | Join : thread_id -> unit Effect.t
  | Migrate : int -> unit Effect.t  (** move this thread to a processor *)
  | Self : thread_id Effect.t
  | My_proc : int Effect.t
  | Now : int Effect.t  (** simulated time, for instrumentation *)
  | New_port : port_id Effect.t
  | Port_send : port_id * int array -> unit Effect.t
  | Port_recv : port_id -> int array Effect.t
  | New_zone : string * int -> zone_id Effect.t  (** (name, pages) *)
  | Alloc : zone_id * int * bool -> int Effect.t
      (** (zone, words, page-aligned); returns the virtual address *)
  | Alloc_pages : zone_id * int -> int Effect.t
      (** (zone, pages); whole-page, page-aligned allocation *)
  | Page_words : int Effect.t  (** the machine's page size in words *)
  | Advise : int * int * Memsys.advice -> unit Effect.t
      (** (vaddr, len, advice): the §9 placement-hint interface *)
  | My_aspace : int Effect.t
  | New_aspace : int Effect.t  (** a fresh, empty address space *)
  | New_segment : string * int -> int Effect.t
      (** (name, pages): a globally named memory object *)
  | Map_segment : int -> int Effect.t
      (** bind a segment into the calling thread's address space; returns
          the base vaddr there *)
  | Sleep : int -> unit Effect.t
      (** block for n ns of simulated time without occupying the
          processor — a timer, not computation.  The wake-up is a
          {e deferred} engine event: it keeps the run alive but does not
          consume a [?limit] budget (retransmission timers are recovery
          plumbing, not application work) *)
  | Inject_handle : Platinum_sim.Inject.t option Effect.t
      (** the machine's fault-injection plane, if one is attached — lets
          user-level recovery code (RPC retransmission) consult the same
          per-machine adversary the kernel paths use *)
