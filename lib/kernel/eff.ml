type thread_id = int
type port_id = int
type zone_id = int

type _ Effect.t +=
  | Access_txn : Platinum_core.Memtxn.t -> Platinum_core.Memtxn.result Effect.t
  | Compute : int -> unit Effect.t
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) * int option * int option -> thread_id Effect.t
  | Join : thread_id -> unit Effect.t
  | Migrate : int -> unit Effect.t
  | Self : thread_id Effect.t
  | My_proc : int Effect.t
  | Now : int Effect.t
  | New_port : port_id Effect.t
  | Port_send : port_id * int array -> unit Effect.t
  | Port_recv : port_id -> int array Effect.t
  | New_zone : string * int -> zone_id Effect.t
  | Alloc : zone_id * int * bool -> int Effect.t
  | Alloc_pages : zone_id * int -> int Effect.t
  | Page_words : int Effect.t
  | Advise : int * int * Memsys.advice -> unit Effect.t
  | My_aspace : int Effect.t
  | New_aspace : int Effect.t
  | New_segment : string * int -> int Effect.t
  | Map_segment : int -> int Effect.t
  | Sleep : int -> unit Effect.t
  | Inject_handle : Platinum_sim.Inject.t option Effect.t
