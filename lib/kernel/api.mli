(** The PLATINUM programming model, as seen by application threads.

    This is the whole of it: shared memory that is read and written with no
    placement annotations (the coherent memory system replicates, migrates,
    or freezes pages underneath), threads, ports, and allocation zones.
    Call these only from inside a thread run by {!Kernel}. *)

(* --- memory --- *)

val read : int -> int
(** [read vaddr] reads one 32-bit word of coherent memory. *)

val write : int -> int -> unit

val rmw : int -> (int -> int) -> int
(** Atomic read-modify-write; returns the old value.  The Butterfly's
    atomic network operations — the basis of locks and event counts. *)

val block_read : int -> int -> int array
(** [block_read vaddr len] reads [len] consecutive words. *)

val block_write : int -> int array -> unit

val read_array : int -> int -> int array
(** Alias of {!block_read}, reads an array stored at an address. *)

val write_array : int -> int array -> unit

val read_stride : ?elem_words:int -> int -> count:int -> stride:int -> int array
(** [read_stride vaddr ~count ~stride] gathers [count] elements of
    [elem_words] consecutive words each (default 1), the k-th starting at
    [vaddr + k*stride], in one kernel trap.  Simulated cost is identical
    to the equivalent per-element block reads. *)

val write_stride : ?elem_words:int -> int -> stride:int -> int array -> unit
(** [write_stride vaddr ~stride data] scatters [data] as elements of
    [elem_words] consecutive words (default 1) placed [stride] words
    apart; [data] length must be a multiple of [elem_words]. *)

val access : Platinum_core.Memtxn.t -> Platinum_core.Memtxn.result
(** Perform an arbitrary memory transaction — the primitive the wrappers
    above are built on. *)

(* --- time --- *)

val compute : int -> unit
(** Spend the given nanoseconds of pure local computation. *)

val now : unit -> int
(** Simulated time (instrumentation only). *)

val sleep : int -> unit
(** Block for the given nanoseconds of simulated time without occupying
    the processor — a timer, not computation.  Used by recovery code
    (retransmission timeouts); the wake-up is a deferred engine event, so
    it never consumes a {!Platinum_sim.Engine.run} [?limit] budget. *)

val inject_handle : unit -> Platinum_sim.Inject.t option
(** The machine's fault-injection plane, if one is attached
    ({!Platinum_machine.Machine.set_inject}) — consulted by user-level
    recovery paths such as {!Rpc} retransmission. *)

(* --- threads --- *)

val spawn : ?proc:int -> ?aspace:int -> (unit -> unit) -> Eff.thread_id
(** Create a thread, optionally on a given processor and in a given
    address space (default: the spawner's; a thread is "constrained to
    execute within a single address space", §1.1). *)

val join : Eff.thread_id -> unit
val spawn_join_all : ?procs:int list -> (int -> unit) list -> unit
(** Spawn one thread per function (placed on [procs] round-robin when
    given, each function receiving its index), then join them all. *)

val yield : unit -> unit
val migrate : int -> unit
val self : unit -> Eff.thread_id
val my_proc : unit -> int

(* --- ports --- *)

val new_port : unit -> Eff.port_id
val send : Eff.port_id -> int array -> unit
val recv : Eff.port_id -> int array

(* --- allocation --- *)

val new_zone : string -> pages:int -> Eff.zone_id
val alloc : ?zone:Eff.zone_id -> ?page_aligned:bool -> int -> int
(** [alloc words] bump-allocates in the default zone (handle [0]). *)

val alloc_pages : ?zone:Eff.zone_id -> int -> int
(** Allocate whole pages; always page-aligned. *)

val page_words : unit -> int
(** The machine's page size in 32-bit words. *)

(* --- address spaces and shared memory objects (§1.1) --- *)

val my_aspace : unit -> int

val new_aspace : unit -> int
(** A fresh, empty address space (own heap, no bindings).  Threads in
    different spaces share nothing unless a segment is mapped into both;
    their other objects are protected from each other. *)

val new_segment : string -> pages:int -> int
(** A globally named memory object. *)

val map_segment : int -> int
(** Bind a segment into the calling thread's address space; returns its
    base virtual address there.  The same segment may be mapped into many
    spaces, at different addresses — memory objects are the unit of
    sharing between address spaces. *)

(* --- placement advice (§9) --- *)

val advise : int -> int -> Memsys.advice -> unit
(** [advise vaddr len advice] passes a placement hint for the pages
    covering the range.  Semantics never change — only data location:
    [Freeze] pins known fine-grain-shared pages remote immediately,
    [Thaw] reacts to a known phase change without waiting for the defrost
    daemon, [Home m] collapses pages to one copy on node [m].  Intended
    for language run-time systems more than for application code. *)
