module Machine = Platinum_machine.Machine
module Cache = Platinum_machine.Cache
module Memmodule = Platinum_machine.Memmodule
module Memsys = Platinum_kernel.Memsys
module Memtxn = Platinum_core.Memtxn

type params = {
  cache_words : int;
  line_words : int;
  t_hit : int;
  t_mem : int;
  bus_read_service : int;
  bus_write_service : int;
}

let sequent =
  {
    cache_words = 2_048;
    line_words = 4;
    t_hit = 150;
    t_mem = 500;
    bus_read_service = 1_000;
    bus_write_service = 600;
  }

type zone = {
  zname : string;
  zbase : int;
  zwords : int;
  mutable znext : int;
}

type t = {
  machine : Machine.t;
  params : params;
  page_words : int;
  caches : Cache.t array;
  bus : Memmodule.t;  (* reuse the FIFO-contention server as the bus *)
  store : (int, int array) Hashtbl.t;  (* backing memory, by page *)
  mutable zones : zone array;
  mutable break_pt : int;  (* next free page for zones *)
}

let cache t p = t.caches.(p)
let bus_busy_ns t = Memmodule.total_busy_ns t.bus
let bus_utilization t ~horizon = Memmodule.utilization t.bus ~horizon

let page_of t vaddr = vaddr / t.page_words

let backing t vaddr =
  let page = page_of t vaddr in
  match Hashtbl.find_opt t.store page with
  | Some a -> a
  | None ->
    let a = Array.make t.page_words 0 in
    Hashtbl.replace t.store page a;
    a

let load_word t vaddr = (backing t vaddr).(vaddr mod t.page_words)
let store_word t vaddr v = (backing t vaddr).(vaddr mod t.page_words) <- v

let snoop_invalidate t ~except ~addr =
  Array.iteri (fun p c -> if p <> except then Cache.invalidate_line c ~addr) t.caches

(* One word read: hit, or bus transaction filling a line. *)
let read_latency t ~now ~proc ~vaddr =
  let c = t.caches.(proc) in
  if Cache.lookup c ~addr:vaddr then t.params.t_hit
  else begin
    let start = Memmodule.acquire t.bus ~arrival:now ~service:t.params.bus_read_service in
    Cache.fill c ~addr:vaddr;
    (start - now) + t.params.bus_read_service + t.params.t_mem
  end

(* Write-through: the cache line is updated if present, memory always is,
   and other caches snoop-invalidate. *)
let write_latency t ~now ~proc ~vaddr =
  ignore (Cache.lookup t.caches.(proc) ~addr:vaddr);
  let start = Memmodule.acquire t.bus ~arrival:now ~service:t.params.bus_write_service in
  snoop_invalidate t ~except:proc ~addr:vaddr;
  (start - now) + t.params.bus_write_service

let new_zone t ~name ~pages =
  let base = t.break_pt in
  t.break_pt <- t.break_pt + pages;
  let z =
    { zname = name; zbase = base * t.page_words; zwords = pages * t.page_words; znext = 0 }
  in
  t.zones <- Array.append t.zones [| z |];
  Array.length t.zones - 1

let align_up x a = (x + a - 1) / a * a

let zone_alloc t ~zone ~words ~page_aligned =
  if zone < 0 || zone >= Array.length t.zones then
    invalid_arg (Printf.sprintf "Uma_sys: no zone %d" zone);
  let z = t.zones.(zone) in
  let start = if page_aligned then align_up z.znext t.page_words else z.znext in
  if start + words > z.zwords then
    failwith (Printf.sprintf "Uma_sys: zone %s exhausted" z.zname);
  z.znext <- start + words;
  z.zbase + start

(* The UMA machine has one flat physical space: all "address spaces" share
   it (a threads-in-one-process model), and segments are just ranges. *)
let memsys t =
  (* The UMA machine has no block-transfer hardware: every transaction is
     a stream of word-sized bus operations, so block and strided chunks
     loop per word.  Memtxn.run threads the accumulated latency through
     chunk boundaries, making this bit-identical to the old per-word
     closures. *)
  let scratch = Some (Memtxn.make_scratch ()) in
  let submit ~now ~proc ~aspace:_ txn =
    let chunk_cost ~now ~data (c : Memtxn.chunk) =
      let vaddr = c.Memtxn.c_vaddr in
      match txn with
      | Memtxn.Read _ ->
        let lat = read_latency t ~now ~proc ~vaddr in
        data.(0) <- load_word t vaddr;
        lat
      | Memtxn.Write _ ->
        let lat = write_latency t ~now ~proc ~vaddr in
        store_word t vaddr data.(0);
        lat
      | Memtxn.Rmw { f; _ } ->
        (* A locked bus transaction: read + write held together. *)
        let l1 = read_latency t ~now ~proc ~vaddr in
        let l2 = write_latency t ~now:(now + l1) ~proc ~vaddr in
        let old = load_word t vaddr in
        store_word t vaddr (f old);
        snoop_invalidate t ~except:proc ~addr:vaddr;
        data.(0) <- old;
        l1 + l2
      | Memtxn.Block_read _ | Memtxn.Stride_read _ ->
        let lat = ref 0 in
        for i = 0 to c.Memtxn.c_words - 1 do
          let va = vaddr + i in
          let l = read_latency t ~now:(now + !lat) ~proc ~vaddr:va in
          data.(c.Memtxn.c_index + i) <- load_word t va;
          lat := !lat + l
        done;
        !lat
      | Memtxn.Block_write _ | Memtxn.Stride_write _ ->
        let lat = ref 0 in
        for i = 0 to c.Memtxn.c_words - 1 do
          let va = vaddr + i in
          let l = write_latency t ~now:(now + !lat) ~proc ~vaddr:va in
          store_word t va data.(c.Memtxn.c_index + i);
          lat := !lat + l
        done;
        !lat
    in
    Memtxn.run ~page_words:t.page_words ~now ?scratch txn ~chunk_cost
  in
  let aspace_count = ref 1 in
  {
    Memsys.page_words = t.page_words;
    submit;
    new_aspace =
      (fun () ->
        let id = !aspace_count in
        incr aspace_count;
        id);
    new_zone = (fun ~aspace:_ ~name ~pages -> new_zone t ~name ~pages);
    alloc = (fun ~zone ~words ~page_aligned -> zone_alloc t ~zone ~words ~page_aligned);
    alloc_pages = (fun ~zone ~pages -> zone_alloc t ~zone ~words:(pages * t.page_words) ~page_aligned:true);
    new_segment =
      (fun ~name ~pages ->
        (* a segment is a zone whose base every space shares *)
        new_zone t ~name ~pages);
    map_segment =
      (fun ~aspace:_ ~segment ->
        zone_alloc t ~zone:segment ~words:0 ~page_aligned:true |> fun base -> base);
    advise = (fun ~now:_ ~proc:_ ~aspace:_ ~vaddr:_ ~len:_ _ -> 0);
    migrate_cost = (fun ~now:_ ~from_proc:_ ~to_proc:_ -> 50_000);
    describe = (fun () -> "bus-based UMA with write-through caches (Sequent Symmetry model)");
    (* The UMA machine has no directory protocol to gate eligibility on;
       every access keeps the full-suspend path. *)
    fastpath = None;
    remote = None;
  }

let create ~machine ~params ~page_words =
  let n = Machine.nprocs machine in
  let t =
    {
      machine;
      params;
      page_words;
      caches =
        Array.init n (fun _ -> Cache.create ~words:params.cache_words ~line_words:params.line_words);
      bus = Memmodule.create 0;
      store = Hashtbl.create 1024;
      zones = [||];
      break_pt = 16;
    }
  in
  (* Zone 0 is the default heap, as in the PLATINUM backend. *)
  ignore (new_zone t ~name:"heap" ~pages:4096);
  t
