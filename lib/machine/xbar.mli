(** Interconnect cost functions.

    These translate a memory request (which processor, which memory module,
    how many words, read or write) into a latency, charging queueing delay
    at the target module(s).  The switch itself is modelled inside the
    per-word remote constants; module occupancy is the serialization point,
    which matches the paper's observation that contention arises "both at
    the memories and in the switch" with memory-module hot spots dominating
    (pivot-row replication, §5.1). *)

type kind =
  | Read
  | Write
  | Rmw  (** an atomic read-modify-write network transaction *)

val uncontended_word_ns : Config.t -> kind -> hop:Config.hop -> int
(** Latency of a single word access with no queueing, routed by the
    interconnect path it takes ({!Config.hop}): local, intra-cluster, or
    cross-fabric.  On a flat machine only [Local]/[Intra] occur and the
    values are the paper's constants unchanged. *)

val access :
  ?inject:Platinum_sim.Inject.t ->
  Config.t ->
  Memmodule.t array ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  mem_module:int ->
  kind ->
  words:int ->
  int
(** Latency (ns) of [words] back-to-back accesses to one module issued at
    [now], including queueing at the target.  This is the primitive each
    {!Platinum_core.Memtxn} chunk is charged with; {!word_access} and
    {!block_words} are the [words = 1] and n-word special cases.

    [inject], when present, is consulted once per call at the module
    serialization point: a transient stall lengthens this request's
    service, a hard outage takes the module down first (the request and
    everything behind it queue until it returns). *)

val word_access :
  ?inject:Platinum_sim.Inject.t ->
  Config.t ->
  Memmodule.t array ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  mem_module:int ->
  kind ->
  int
(** Latency (ns) of one word access issued at [now], including queueing at
    the target module. *)

val block_words :
  ?inject:Platinum_sim.Inject.t ->
  Config.t ->
  Memmodule.t array ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  mem_module:int ->
  kind ->
  words:int ->
  int
(** Latency of [words] consecutive word accesses to one module (an
    application-level block read or write; the processor issues them
    back-to-back, so the module is occupied for the whole run). *)

val block_copy :
  ?inject:Platinum_sim.Inject.t ->
  Config.t ->
  Memmodule.t array ->
  now:Platinum_sim.Time_ns.t ->
  src:int ->
  dst:int ->
  words:int ->
  int
(** Latency of a kernel block transfer of [words] from module [src] to
    module [dst].  Both modules are occupied for the duration (the Butterfly
    block transfer consumes 75% of the local bus bandwidth on both nodes;
    we model full occupancy, §7).  When [src = dst] (a purely local copy)
    only one module is occupied.  Module faults ([inject]) are drawn on the
    source module. *)

val zero_fill :
  ?inject:Platinum_sim.Inject.t ->
  Config.t ->
  Memmodule.t array ->
  now:Platinum_sim.Time_ns.t ->
  dst:int ->
  words:int ->
  int
(** Latency of zero-filling [words] on module [dst]. *)
