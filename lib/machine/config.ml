type t = {
  nprocs : int;
  cluster_size : int;
  t_cross_read_extra : int;
  t_cross_write_extra : int;
  t_cross_block_extra : int;
  ipi_cross_extra : int;
  page_words : int;
  t_local_word : int;
  t_remote_read_word : int;
  t_remote_write_word : int;
  t_module_service : int;
  t_block_word : int;
  fault_entry_ns : int;
  alloc_map_local_ns : int;
  alloc_map_remote_ns : int;
  map_existing_ns : int;
  zero_fill_word_ns : int;
  shootdown_post_ns : int;
  ipi_send_ns : int;
  page_free_ns : int;
  sync_handler_ns : int;
  atc_reload_ns : int;
  vm_fault_ns : int;
  aspace_activate_ns : int;
  thread_spawn_ns : int;
  thread_migrate_ns : int;
  port_op_ns : int;
  context_switch_ns : int;
  quantum_ns : int;
  local_cache_words : int;
  local_cache_line_words : int;
  t_cache_hit : int;
  t1_freeze_window : int;
  t2_defrost_period : int;
}

(* The fault-path constants are chosen so the composed path lengths land in
   the ranges measured in §4:
     read miss, replicate non-modified page (local metadata)
       = fault_entry + alloc_map_local + 1024 * t_block_word ≈ 1.34 ms
     ... with remote metadata ≈ 1.38 ms
     read miss on a modified page, one processor restricted
       adds shootdown_post + ipi_send + ack wait ≈ 0.04–0.21 ms
     write miss on present+, one invalidation and one page freed
       = fault_entry + shootdown + page_free + map_existing ≈ 0.25–0.45 ms *)
let butterfly_plus ?(nprocs = 16) ?(page_words = 1024) () =
  if nprocs < 1 || nprocs > 62 then
    invalid_arg "Config.butterfly_plus: nprocs must be in [1, 62]";
  {
    nprocs;
    (* The Butterfly Plus is one flat fabric: every node is one switch hop
       from every other, so the whole machine is a single cluster and the
       cross-fabric extras never apply. *)
    cluster_size = nprocs;
    t_cross_read_extra = 0;
    t_cross_write_extra = 0;
    t_cross_block_extra = 0;
    ipi_cross_extra = 0;
    page_words;
    t_local_word = 320;
    t_remote_read_word = 5_000;
    t_remote_write_word = 4_000;
    t_module_service = 320;
    t_block_word = 1_085;
    fault_entry_ns = 150_000;
    alloc_map_local_ns = 80_000;
    alloc_map_remote_ns = 120_000;
    map_existing_ns = 50_000;
    zero_fill_word_ns = 110;
    shootdown_post_ns = 10_000;
    ipi_send_ns = 7_000;
    page_free_ns = 10_000;
    sync_handler_ns = 25_000;
    atc_reload_ns = 2_000;
    vm_fault_ns = 80_000;
    aspace_activate_ns = 20_000;
    thread_spawn_ns = 200_000;
    thread_migrate_ns = 150_000;
    port_op_ns = 50_000;
    context_switch_ns = 100_000;
    quantum_ns = 20_000_000;
    local_cache_words = 0;
    local_cache_line_words = 4;
    t_cache_hit = 100;
    t1_freeze_window = 10_000_000;
    t2_defrost_period = 1_000_000_000;
  }

(* A machine bigger than the paper's: [nodes] single-processor nodes
   grouped into clusters of [cluster_size] on a two-level interconnect.
   Within a cluster the Butterfly constants apply unchanged; crossing the
   fabric between clusters adds a fixed per-word (and per-IPI) surcharge,
   the shape modern multi-socket NUMA fabrics have (intra-socket vs
   cross-fabric hops — Mitosis/numaPTE-scale machines, PAPERS.md).  The
   constants keep T_l << T_r < T_r+cross, so every placement argument in
   the paper still has teeth at 4096 nodes. *)
let max_nodes = 4096

let hierarchical ?(cluster_size = 16) ?(page_words = 1024) ~nodes () =
  if nodes < 1 || nodes > max_nodes then
    invalid_arg
      (Printf.sprintf "Config.hierarchical: nodes must be in [1, %d]" max_nodes);
  if cluster_size < 1 then invalid_arg "Config.hierarchical: cluster_size must be >= 1";
  let base = butterfly_plus ~nprocs:1 ~page_words () in
  {
    base with
    nprocs = nodes;
    cluster_size;
    (* One extra fabric hop ~ 60% of a remote read on the Butterfly's
       switch; writes pipeline slightly better; block transfers amortize
       the hop over the burst. *)
    t_cross_read_extra = 3_000;
    t_cross_write_extra = 2_400;
    t_cross_block_extra = 400;
    ipi_cross_extra = 5_000;
  }

type hop =
  | Local
  | Intra
  | Cross

let cluster_of t node =
  if t.cluster_size >= t.nprocs then 0 else node / t.cluster_size

let clusters t =
  if t.cluster_size >= t.nprocs then 1
  else (t.nprocs + t.cluster_size - 1) / t.cluster_size

let hop t ~src ~dst =
  if src = dst then Local else if cluster_of t src = cluster_of t dst then Intra else Cross

(* The conservative-synchronization lookahead: no cross-node cause can
   produce a cross-node effect sooner than the cheapest cross-node
   latency, so a time window of this width is safe to advance without
   hearing from other nodes.  The cross-fabric extras only ever add
   latency, so the intra-cluster minimum is a sound global bound. *)
let lookahead_ns t =
  min
    (min t.t_remote_read_word t.t_remote_write_word)
    (min t.t_block_word t.ipi_send_ns)

let page_bytes t = t.page_words * 4

let with_policy_params ?t1_freeze_window ?t2_defrost_period t =
  let t1 = Option.value t1_freeze_window ~default:t.t1_freeze_window in
  let t2 = Option.value t2_defrost_period ~default:t.t2_defrost_period in
  { t with t1_freeze_window = t1; t2_defrost_period = t2 }

let with_local_caches ?(words = 2_048) ?(line_words = 4) ?(t_hit = 100) t =
  { t with local_cache_words = words; local_cache_line_words = line_words; t_cache_hit = t_hit }

let pp fmt t =
  if clusters t > 1 then
    Format.fprintf fmt "@[<v>topology: %d clusters of %d (+%dns/%dns cross-fabric r/w)@,@]"
      (clusters t) t.cluster_size t.t_cross_read_extra t.t_cross_write_extra;
  Format.fprintf fmt
    "@[<v>machine: %d processors, %d-word (%d-byte) pages@,\
     T_l=%dns T_r=%dns/%dns (r/w) T_b=%dns/word@,\
     t1=%a t2=%a@]"
    t.nprocs t.page_words (page_bytes t) t.t_local_word t.t_remote_read_word
    t.t_remote_write_word t.t_block_word Platinum_sim.Time_ns.pp
    t.t1_freeze_window Platinum_sim.Time_ns.pp t.t2_defrost_period
