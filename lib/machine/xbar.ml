type kind =
  | Read
  | Write
  | Rmw

(* Routing by topology: a Local reference never leaves the node, an Intra
   hop is the paper's one-switch-traversal T_r, and a Cross hop pays the
   extra fabric traversal on top.  On a flat machine (the Butterfly:
   [cluster_size >= nprocs]) Cross never occurs, so every published
   constant is reproduced bit-for-bit. *)
let uncontended_word_ns (c : Config.t) kind ~(hop : Config.hop) =
  match hop with
  | Config.Local -> (
    match kind with
    | Read | Write -> c.t_local_word
    | Rmw -> 2 * c.t_local_word)
  | Config.Intra -> (
    match kind with
    | Read -> c.t_remote_read_word
    | Write -> c.t_remote_write_word
    | Rmw -> c.t_remote_read_word + c.t_module_service)
  | Config.Cross -> (
    match kind with
    | Read -> c.t_remote_read_word + c.t_cross_read_extra
    | Write -> c.t_remote_write_word + c.t_cross_write_extra
    | Rmw -> c.t_remote_read_word + c.t_cross_read_extra + c.t_module_service)

(* Fault injection lives at the module serialization point: a transient
   stall lengthens this one request's service; a hard outage pushes the
   module's busy horizon out, so this request — and everything arriving
   behind it — queues until the module comes back.  Returns the extra
   service to charge (stall), having applied any outage to the module. *)
let module_fault inject m ~now =
  match inject with
  | None -> 0
  | Some inj -> (
    match Platinum_sim.Inject.module_fault inj with
    | `None -> 0
    | `Stall n -> n
    | `Outage n ->
      Memmodule.reserve_until m (max now (Memmodule.busy_until m) + n);
      0)

(* The one interconnect primitive behind every memory transaction chunk:
   [words] back-to-back accesses from [proc] to one module.  The request
   traverses the switch (folded into the uncontended constants), queues at
   the module, is served for the whole run, and returns.
   Latency = queueing delay + words * uncontended time.  For [words = 1]
   this is a plain word access; issuing a run as one acquisition is
   cost-identical to [words] sequential acquisitions, because the module is
   the serialization point either way. *)
let access ?inject (c : Config.t) modules ~now ~proc ~mem_module kind ~words =
  if words < 0 then invalid_arg "Xbar.access";
  if words = 0 then 0
  else begin
    let hop = Config.hop c ~src:proc ~dst:mem_module in
    let m = modules.(mem_module) in
    let per_word_service =
      match hop with Config.Local -> c.t_local_word | _ -> c.t_module_service
    in
    let base = words * uncontended_word_ns c kind ~hop in
    let extra = module_fault inject m ~now in
    let start =
      Memmodule.acquire m ~arrival:now ~service:((words * per_word_service) + extra)
    in
    (start - now) + base + extra
  end

let word_access ?inject c modules ~now ~proc ~mem_module kind =
  access ?inject c modules ~now ~proc ~mem_module kind ~words:1

let block_words ?inject c modules ~now ~proc ~mem_module kind ~words =
  access ?inject c modules ~now ~proc ~mem_module kind ~words

let block_copy ?inject (c : Config.t) modules ~now ~src ~dst ~words =
  if words < 0 then invalid_arg "Xbar.block_copy";
  if words = 0 then 0
  else begin
    let per_word =
      c.t_block_word
      + (match Config.hop c ~src ~dst with
        | Config.Cross -> c.t_cross_block_extra
        | Config.Local | Config.Intra -> 0)
    in
    let duration = words * per_word in
    let msrc = modules.(src) in
    let mdst = modules.(dst) in
    let extra = module_fault inject msrc ~now in
    let duration = duration + extra in
    if src = dst then begin
      let start = Memmodule.acquire msrc ~arrival:now ~service:duration in
      (start - now) + duration
    end
    else begin
      (* The transfer starts once both modules are free and holds both. *)
      let arrival = max now (max (Memmodule.busy_until msrc) (Memmodule.busy_until mdst)) in
      let start = Memmodule.acquire msrc ~arrival ~service:duration in
      Memmodule.reserve_until mdst (start + duration);
      (start - now) + duration
    end
  end

let zero_fill ?inject (c : Config.t) modules ~now ~dst ~words =
  if words < 0 then invalid_arg "Xbar.zero_fill";
  if words = 0 then 0
  else begin
    let duration = words * c.zero_fill_word_ns in
    let m = modules.(dst) in
    let extra = module_fault inject m ~now in
    let duration = duration + extra in
    let start = Memmodule.acquire m ~arrival:now ~service:duration in
    (start - now) + duration
  end
