(** The assembled NUMA machine: configuration, memory modules, and
    per-processor accounting shared by the kernel layers above.

    Processor node [i] hosts processor [i] and memory module [i]. *)

type t

val create : Config.t -> t

val config : t -> Config.t
val nprocs : t -> int
val modules : t -> Memmodule.t array
val mem_module : t -> int -> Memmodule.t

val module_of_proc : t -> int -> int
(** The memory module local to a processor (identity on the Butterfly). *)

(* --- §7 local data caches (optional) --- *)

val caches_enabled : t -> bool
val cache : t -> proc:int -> Cache.t option

val cache_exn : t -> proc:int -> Cache.t
(** Processor [proc]'s cache without the option wrap (no allocation);
    only legal after {!caches_enabled} returned [true]. *)

val invalidate_cached_range : t -> proc:int -> addr:int -> words:int -> unit
val invalidate_cached_range_all : t -> addr:int -> words:int -> unit
(** Software-maintained cache coherency: the coherent memory system calls
    these wherever a page's data or cachability changes. *)

(* --- interrupt-cost accounting ---

   When a shootdown interrupts a processor, the target spends
   [sync_handler_ns] in the Cmap synchronization handler.  Rather than
   rescheduling the target's already-queued resume event, the cost is
   accumulated as a penalty charged to the target's next operation — the
   standard deferred-charge device for modelling asynchronous interrupts in
   a discrete-event simulator. *)

val add_penalty : t -> proc:int -> int -> unit
val take_penalty : t -> proc:int -> int
(** Return and clear the accumulated penalty for a processor. *)

val pending_penalty : t -> proc:int -> int
(** The accumulated penalty, without clearing it.  The kernel's coalescing
    fast path refuses to arm while a penalty is pending, so deferred
    shootdown-handler charges always flow through the full-suspend path. *)

(* --- processor busy horizon ---

   [proc_busy_until] is the earliest time the processor will next be able
   to respond to an inter-processor interrupt; shootdown initiators use it
   to compute how long they wait for each target's acknowledgement. *)

val proc_busy_until : t -> proc:int -> Platinum_sim.Time_ns.t
val set_proc_busy_until : t -> proc:int -> Platinum_sim.Time_ns.t -> unit

(* --- fault injection --- *)

val set_inject : t -> Platinum_sim.Inject.t option -> unit
(** Attach (or detach) a fault-injection plane.  [None] (the default) and
    an attached plane with rate [0.0] are behaviourally identical: the
    fault-free paths never consult or perturb anything. *)

val inject : t -> Platinum_sim.Inject.t option
(** The attached plane, consulted by the kernel layers ({!Platinum_machine.Xbar},
    shootdown, fault handler, RPC) at each fault opportunity. *)

(* --- counters --- *)

val count_ipi : t -> unit
val ipis_sent : t -> int
val reset_stats : t -> unit
