(** Machine and kernel-cost parameters.

    The [butterfly_plus] preset encodes the constants published in §4 of the
    paper: a 16-processor BBN Butterfly Plus (16.67 MHz MC68020 + MC68851,
    4 MB per node), T_l ≈ 320 ns, T_r ≈ 5000 ns per 32-bit word read,
    T_b ≈ 1.1 µs per word block-transferred, 4 KB pages, and the measured
    fault-path overheads (0.23–0.48 ms fixed, ≈7 µs per IPI, ≈10 µs per page
    free). *)

type t = {
  nprocs : int;  (** processor nodes; one memory module per node *)
  (* --- two-level interconnect topology --- *)
  cluster_size : int;
      (** nodes per cluster; [>= nprocs] (the Butterfly) = one flat fabric *)
  t_cross_read_extra : int;  (** ns added per word read crossing clusters *)
  t_cross_write_extra : int;  (** ns added per word write crossing clusters *)
  t_cross_block_extra : int;  (** ns added per block-transfer word crossing clusters *)
  ipi_cross_extra : int;  (** ns added per IPI crossing clusters *)
  page_words : int;  (** words per page (words are 32-bit); 1024 = 4 KB *)
  (* --- word-access timing --- *)
  t_local_word : int;  (** ns per local 32-bit reference (T_l) *)
  t_remote_read_word : int;  (** ns per remote read (T_r) *)
  t_remote_write_word : int;  (** ns per remote write (writes are faster) *)
  t_module_service : int;  (** memory-module occupancy per word op, ns *)
  (* --- block transfer --- *)
  t_block_word : int;  (** ns per word of kernel block transfer (T_b) *)
  (* --- kernel fault-path costs --- *)
  fault_entry_ns : int;  (** trap + Cmap lookup *)
  alloc_map_local_ns : int;  (** allocate + map a frame, local Cpage metadata *)
  alloc_map_remote_ns : int;  (** same, metadata on a remote module *)
  map_existing_ns : int;  (** map an existing frame (no allocation) *)
  zero_fill_word_ns : int;  (** ns per word when zero-filling a new page *)
  (* --- shootdown --- *)
  shootdown_post_ns : int;  (** post a Cmap message *)
  ipi_send_ns : int;  (** initiator cost per interrupted target *)
  page_free_ns : int;  (** free one physical page (1 remote read + write) *)
  sync_handler_ns : int;  (** target-side Cmap synchronization handler *)
  (* --- MMU / kernel misc --- *)
  atc_reload_ns : int;  (** ATC miss satisfied from the Pmap *)
  vm_fault_ns : int;  (** machine-independent VM fault (create/bind a Cpage) *)
  aspace_activate_ns : int;  (** activate an address space on a processor *)
  thread_spawn_ns : int;
  thread_migrate_ns : int;  (** beyond the kernel-stack block copy *)
  port_op_ns : int;  (** fixed cost of a port send/receive *)
  context_switch_ns : int;
  quantum_ns : int;  (** scheduling quantum *)
  (* --- §7 extension: local data caches without hardware coherency --- *)
  local_cache_words : int;
      (** per-processor cache size in words; 0 (the Butterfly Plus) = none *)
  local_cache_line_words : int;
  t_cache_hit : int;  (** ns for a local-cache hit *)
  (* --- replication-policy parameters (§4.2) --- *)
  t1_freeze_window : int;  (** freeze pages invalidated within t1; 10 ms *)
  t2_defrost_period : int;  (** defrost-daemon period; 1 s *)
}

val butterfly_plus : ?nprocs:int -> ?page_words:int -> unit -> t
(** The paper's machine.  [nprocs] defaults to 16, [page_words] to 1024
    (4 KB pages). *)

val max_nodes : int
(** Largest machine {!hierarchical} accepts (4096 nodes). *)

val hierarchical : ?cluster_size:int -> ?page_words:int -> nodes:int -> unit -> t
(** A machine far past the Butterfly's 16 nodes: [nodes] single-processor
    nodes in clusters of [cluster_size] (default 16) on a two-level
    fabric.  Intra-cluster costs are the Butterfly constants unchanged;
    crossing clusters adds the [t_cross_*]/[ipi_cross_extra] surcharges.
    [nodes] may go to {!max_nodes}. *)

type hop =
  | Local  (** processor referencing its own module *)
  | Intra  (** remote, same cluster: the paper's T_r *)
  | Cross  (** remote, across the fabric: T_r plus the cross extras *)

val cluster_of : t -> int -> int
val clusters : t -> int

val hop : t -> src:int -> dst:int -> hop
(** Classify the interconnect path between two nodes. *)

val lookahead_ns : t -> int
(** The minimum cross-node latency of this machine — the natural
    conservative-synchronization horizon for a sharded simulation: no
    event at one node can affect another node sooner than this. *)

val page_bytes : t -> int

val with_policy_params :
  ?t1_freeze_window:int -> ?t2_defrost_period:int -> t -> t
(** Override the replication-policy timing parameters (for the t1/t2
    ablations). *)

val with_local_caches :
  ?words:int -> ?line_words:int -> ?t_hit:int -> t -> t
(** Enable the §7 local-cache extension (defaults: 8 KB direct-mapped,
    4-word lines, 100 ns hits).  The caches have no hardware coherency;
    the coherent memory system keeps them coherent in software, and only
    cachable pages (not Modified-and-remotely-mapped) use them. *)

val pp : Format.formatter -> t -> unit
