type t = {
  config : Config.t;
  modules : Memmodule.t array;
  caches : Cache.t array;  (* empty when the §7 extension is off *)
  penalties : int array;
  busy : int array;
  mutable ipis : int;
  mutable inject : Platinum_sim.Inject.t option;
}

let create (config : Config.t) =
  {
    config;
    modules = Array.init config.nprocs Memmodule.create;
    caches =
      (if config.Config.local_cache_words > 0 then
         Array.init config.nprocs (fun _ ->
             Cache.create ~words:config.Config.local_cache_words
               ~line_words:config.Config.local_cache_line_words)
       else [||]);
    penalties = Array.make config.nprocs 0;
    busy = Array.make config.nprocs 0;
    ipis = 0;
    inject = None;
  }

let set_inject t inj = t.inject <- inj
let inject t = t.inject

let config t = t.config
let nprocs t = t.config.nprocs
let modules t = t.modules
let mem_module t i = t.modules.(i)
let module_of_proc _t p = p
let caches_enabled t = Array.length t.caches > 0
let cache t ~proc = if Array.length t.caches = 0 then None else Some t.caches.(proc)
let cache_exn t ~proc = t.caches.(proc)

let invalidate_cached_range t ~proc ~addr ~words =
  if Array.length t.caches > 0 then Cache.invalidate_range t.caches.(proc) ~addr ~words

(* A plain loop: the closure [Array.iter] needs would capture [addr] and
   [words] and be allocated on every write — this sits on the word-write
   hot path. *)
let invalidate_cached_range_all t ~addr ~words =
  for i = 0 to Array.length t.caches - 1 do
    Cache.invalidate_range (Array.unsafe_get t.caches i) ~addr ~words
  done

let add_penalty t ~proc ns = t.penalties.(proc) <- t.penalties.(proc) + ns

let take_penalty t ~proc =
  let p = t.penalties.(proc) in
  t.penalties.(proc) <- 0;
  p

let pending_penalty t ~proc = t.penalties.(proc)

let proc_busy_until t ~proc = t.busy.(proc)

let set_proc_busy_until t ~proc until =
  if until > t.busy.(proc) then t.busy.(proc) <- until

let count_ipi t = t.ipis <- t.ipis + 1
let ipis_sent t = t.ipis

let reset_stats t =
  t.ipis <- 0;
  Array.iter Memmodule.reset_stats t.modules
