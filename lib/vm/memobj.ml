module Coherent = Platinum_core.Coherent
module Cpage = Platinum_core.Cpage

type t = {
  obj_id : int;
  obj_name : string;
  pages : Cpage.t option array;
  coh : Coherent.t;
}

(* Atomic: memory objects may be created from concurrent sweep domains
   (Runner.Par); the id only needs to be unique, not dense, so a plain
   fetch-and-add is enough and keeps each domain's simulation race-free. *)
let next_id = Atomic.make 0

let create coh ~name ~npages =
  if npages <= 0 then invalid_arg "Memobj.create: npages must be positive";
  let id = Atomic.fetch_and_add next_id 1 in
  { obj_id = id; obj_name = name; pages = Array.make npages None; coh }

let id t = t.obj_id
let name t = t.obj_name
let npages t = Array.length t.pages

let page t ~index =
  if index < 0 || index >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Memobj.page: index %d out of range for %s" index t.obj_name);
  match t.pages.(index) with
  | Some p -> p
  | None ->
    let label = Printf.sprintf "%s[%d]" t.obj_name index in
    let p = Coherent.new_cpage t.coh ~label () in
    t.pages.(index) <- Some p;
    p

let page_if_exists t ~index =
  if index < 0 || index >= Array.length t.pages then None else t.pages.(index)

let iter_pages f t =
  Array.iteri
    (fun i -> function
      | Some p -> f i p
      | None -> ())
    t.pages
