(* Big-machine workloads for the sharded engine: every node is a logical
   process owning its own memory module, RNG and fault plane, and all
   cross-node traffic — remote word accesses (Xbar), shootdown IPIs, RPC
   request/response, block payloads — travels as messages through the
   shard mailboxes.  This is the message-level decomposition the sequential
   kernel model charges arithmetically: here the home node really does
   serve the request in its own event, against its own module's queue, at
   whatever time the fabric delivers it.

   Determinism: each node's RNG and fault plane are seeded from the master
   seed in node order at setup and consumed only inside that node's own
   events, so the whole run is a pure function of (workload, config, seed,
   rate) — independent of shard count and domain count.  That is pinned by
   test_parshard.ml across shards x domains grids. *)

module Config = Platinum_machine.Config
module Memmodule = Platinum_machine.Memmodule
module Xbar = Platinum_machine.Xbar
module Shard = Platinum_sim.Shard
module Inject = Platinum_sim.Inject
module Rng = Platinum_sim.Rng
module Arrivals = Platinum_sim.Arrivals
module Hist = Platinum_stats.Hist

type workload =
  | Traffic  (** remote/local word traffic served at the home module *)
  | Storm  (** shootdown IPI storms with lost/delayed-IPI recovery *)
  | Echo  (** RPC echo against per-cluster servers, with retransmission *)
  | Serve  (** open-loop request serving with per-node latency histograms *)

let workload_name = function
  | Traffic -> "traffic"
  | Storm -> "storm"
  | Echo -> "echo"
  | Serve -> "serve"

let all_workloads = [ Traffic; Storm; Echo; Serve ]

type node = {
  id : int;
  rng : Rng.t;
  inject : Inject.t option;
  mmodule : Memmodule.t;
  mutable ops_left : int;
  (* -- counters, mutated only by this node's own handlers -- *)
  mutable accesses : int;
  mutable words : int;
  mutable latency_ns : int;
  mutable remote : int;
  mutable cross : int;
  mutable ipis : int;
  mutable acks : int;
  mutable retries : int;
  mutable rpcs : int;
  mutable served : int;
  (* per-node latency histogram (Serve); coarse precision keeps the
     footprint small on thousand-node machines *)
  hist : Hist.t;
}

(* Each workload's own conservative horizon.  Config.lookahead_ns is the
   fully general bound (it also covers T_b block-word streams), but every
   message a given workload sends rides a known primitive — a remote word
   trip, an IPI, or a port operation — so its window can be as fat as that
   primitive's minimum cross-node delay.  Wider windows = fewer barriers. *)
let lookahead (c : Config.t) = function
  | Traffic -> min c.Config.t_remote_read_word c.Config.t_remote_write_word
  | Storm -> c.Config.ipi_send_ns
  | Echo | Serve -> c.Config.port_op_ns

type result = {
  workload : string;
  nodes : int;
  run_shards : int;
  run_domains : int;
  events : int;
  windows : int;
  clock : int;
  accesses : int;
  words : int;
  remote : int;
  cross : int;
  ipis : int;
  retries : int;
  rpcs : int;
  faults : int;
  avg_latency_ns : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  fingerprint : string;
}

(* --- deterministic node setup --- *)

let make_nodes (c : Config.t) ~seed ~inject_rate ~ops_per_node =
  let master = Rng.create seed in
  Array.init c.Config.nprocs (fun id ->
      let rng = Rng.split master in
      let inject =
        if inject_rate > 0.0 then
          Some
            (Inject.create
               (Inject.config ~seed:(Rng.next_int64 master) ~rate:inject_rate ()))
        else begin
          (* keep the master stream identical whether or not a plane is
             attached at this rate *)
          ignore (Rng.next_int64 master);
          None
        end
      in
      {
        id;
        rng;
        inject;
        mmodule = Memmodule.create id;
        ops_left = ops_per_node;
        accesses = 0;
        words = 0;
        latency_ns = 0;
        remote = 0;
        cross = 0;
        ipis = 0;
        acks = 0;
        retries = 0;
        rpcs = 0;
        served = 0;
        hist = Hist.create ~precision_bits:5 ();
      })

(* Pick a remote destination: mostly intra-cluster, sometimes across the
   fabric — the access mix that makes the two-level topology visible. *)
let pick_remote (c : Config.t) (n : node) =
  let nnodes = c.Config.nprocs in
  if nnodes = 1 then n.id
  else begin
    let cluster = Config.cluster_of c n.id in
    let nclusters = Config.clusters c in
    let cross = nclusters > 1 && Rng.int n.rng 100 < 25 in
    if cross then begin
      let other = (cluster + 1 + Rng.int n.rng (nclusters - 1)) mod nclusters in
      let base = other * c.Config.cluster_size in
      let span = min c.Config.cluster_size (nnodes - base) in
      base + Rng.int n.rng span
    end
    else begin
      let base = cluster * c.Config.cluster_size in
      let span = min c.Config.cluster_size (nnodes - base) in
      if span <= 1 then (n.id + 1) mod nnodes
      else begin
        let d = base + Rng.int n.rng span in
        if d = n.id then base + ((d - base + 1) mod span) else d
      end
    end
  end

let think (n : node) = 1_000 + Rng.int n.rng 49_000

(* --- Traffic: remote word accesses served at the home module --- *)

let start_traffic (c : Config.t) sh nodes_arr modules =
  let rec tick (n : node) (_now : int) =
    if n.ops_left > 0 then begin
      n.ops_left <- n.ops_left - 1;
      let words = 1 + Rng.int n.rng 8 in
      let remote = c.Config.nprocs > 1 && Rng.int n.rng 100 < 30 in
      if not remote then begin
        (* Local: the node's own module, served inline in its own event. *)
        let now = Shard.now sh ~node:n.id in
        let lat = Xbar.access c modules ~now ~proc:n.id ~mem_module:n.id Xbar.Read ~words in
        n.accesses <- n.accesses + 1;
        n.words <- n.words + words;
        n.latency_ns <- n.latency_ns + lat;
        Shard.schedule sh ~node:n.id ~delay:(think n + lat) (tick n)
      end
      else begin
        let dst = pick_remote c n in
        let hop = Config.hop c ~src:n.id ~dst in
        n.remote <- n.remote + 1;
        if hop = Config.Cross then n.cross <- n.cross + 1;
        let issue = Shard.now sh ~node:n.id in
        let wire = Xbar.uncontended_word_ns c Xbar.Read ~hop in
        (* Request travels one word trip; the home node serves the burst
           against its own module queue and mails the payload back. *)
        Shard.post sh ~src:n.id ~dst ~delay:wire (fun arrival ->
            let home = nodes_arr.(dst) in
            home.served <- home.served + 1;
            let lat =
              Xbar.access ?inject:home.inject c modules ~now:arrival ~proc:n.id
                ~mem_module:dst Xbar.Read ~words
            in
            Shard.post sh ~src:dst ~dst:n.id ~delay:(max lat wire) (fun done_at ->
                n.accesses <- n.accesses + 1;
                n.words <- n.words + words;
                n.latency_ns <- n.latency_ns + (done_at - issue);
                Shard.schedule sh ~node:n.id ~delay:(think n) (tick n)))
      end
    end
  in
  Array.iter
    (fun n -> Shard.schedule sh ~node:n.id ~delay:(Rng.int n.rng 50_000) (tick n))
    nodes_arr

(* --- Storm: shootdown IPI rounds with lost/delayed-IPI recovery --- *)

let start_storm (c : Config.t) sh nodes_arr =
  let nnodes = c.Config.nprocs in
  let ipi_ns ~src ~dst =
    c.Config.ipi_send_ns
    + (match Config.hop c ~src ~dst with
      | Config.Cross -> c.Config.ipi_cross_extra
      | Config.Local | Config.Intra -> 0)
  in
  let rec round (n : node) (_now : int) =
    if n.ops_left > 0 then begin
      n.ops_left <- n.ops_left - 1;
      if nnodes = 1 then Shard.schedule sh ~node:n.id ~delay:(think n) (round n)
      else begin
        let targets = 1 + Rng.int n.rng (min 4 (nnodes - 1)) in
        let pending = ref targets in
        let ack_from dst (_ : int) =
          n.acks <- n.acks + 1;
          decr pending;
          ignore dst;
          if !pending = 0 then Shard.schedule sh ~node:n.id ~delay:(think n) (round n)
        in
        let deliver dst ~delay =
          n.ipis <- n.ipis + 1;
          Shard.post sh ~src:n.id ~dst ~delay (fun (_ : int) ->
              let t = nodes_arr.(dst) in
              t.served <- t.served + 1;
              (* target-side synchronization handler, then the ack rides
                 an IPI back *)
              Shard.post sh ~src:dst ~dst:n.id
                ~delay:(c.Config.sync_handler_ns + ipi_ns ~src:dst ~dst:n.id)
                (ack_from dst))
        in
        (* Each IPI may be dropped or delayed by this node's fault plane;
           a drop arms the ack-timeout retransmission timer, and the
           plane's bounded adversary guarantees the final attempt
           delivers — the same recovery contract as Shootdown.run. *)
        let rec send dst ~attempt =
          let base = ipi_ns ~src:n.id ~dst in
          match n.inject with
          | None -> deliver dst ~delay:base
          | Some inj -> (
            match Inject.ipi_fault inj ~attempt with
            | `Deliver -> deliver dst ~delay:base
            | `Delay d -> deliver dst ~delay:(base + d)
            | `Drop ->
              n.retries <- n.retries + 1;
              Inject.note_shootdown_retry inj;
              Shard.schedule sh ~node:n.id ~delay:(Inject.ack_timeout inj ~attempt)
                (fun (_ : int) -> send dst ~attempt:(attempt + 1)))
        in
        for _ = 1 to targets do
          let dst = pick_remote c n in
          send dst ~attempt:0
        done
      end
    end
  in
  Array.iter
    (fun n -> Shard.schedule sh ~node:n.id ~delay:(Rng.int n.rng 50_000) (round n))
    nodes_arr

(* --- Echo: RPC against per-cluster servers with retransmission --- *)

let start_echo (c : Config.t) sh nodes_arr modules =
  let nnodes = c.Config.nprocs in
  let server_of (n : node) =
    let nclusters = Config.clusters c in
    let cluster =
      if nclusters > 1 && Rng.int n.rng 100 < 20 then
        (Config.cluster_of c n.id + 1 + Rng.int n.rng (nclusters - 1)) mod nclusters
      else Config.cluster_of c n.id
    in
    min (cluster * c.Config.cluster_size) (nnodes - 1)
  in
  let rec tick (n : node) (_now : int) =
    if n.ops_left > 0 then begin
      n.ops_left <- n.ops_left - 1;
      let dst = server_of n in
      let words = 4 + Rng.int n.rng 28 in
      let issue = Shard.now sh ~node:n.id in
      let wire =
        c.Config.port_op_ns + (words * c.Config.t_block_word)
        + (match Config.hop c ~src:n.id ~dst with
          | Config.Cross -> words * c.Config.t_cross_block_extra
          | Config.Local | Config.Intra -> 0)
      in
      let finish (done_at : int) =
        n.rpcs <- n.rpcs + 1;
        n.words <- n.words + (2 * words);
        n.latency_ns <- n.latency_ns + (done_at - issue);
        Shard.schedule sh ~node:n.id ~delay:(think n) (tick n)
      in
      let serve (arrival : int) =
        let server = nodes_arr.(dst) in
        server.served <- server.served + 1;
        if dst = n.id then finish (arrival + c.Config.port_op_ns)
        else begin
          (* The server's module is the serialization point: bursts queue
             behind each other exactly like word runs at a memory module. *)
          let q =
            Xbar.access ?inject:server.inject c modules ~now:arrival ~proc:n.id
              ~mem_module:dst Xbar.Read ~words:1
          in
          Shard.post sh ~src:dst ~dst:n.id ~delay:(max wire (q + c.Config.port_op_ns))
            finish
        end
      in
      (* A lossy switch may eat the request: back off and retransmit,
         bounded by the plane (the final attempt always goes through). *)
      let rec send ~attempt =
        match n.inject with
        | None -> Shard.post sh ~src:n.id ~dst ~delay:wire serve
        | Some inj ->
          if Inject.rpc_drop inj ~attempt then begin
            n.retries <- n.retries + 1;
            Inject.note_rpc_retry inj;
            Shard.schedule sh ~node:n.id ~delay:(Inject.rpc_retrans inj ~attempt)
              (fun (_ : int) -> send ~attempt:(attempt + 1))
          end
          else Shard.post sh ~src:n.id ~dst ~delay:wire serve
      in
      send ~attempt:0
    end
  in
  Array.iter
    (fun n -> Shard.schedule sh ~node:n.id ~delay:(Rng.int n.rng 50_000) (tick n))
    nodes_arr

(* --- Serve: open-loop request serving with latency histograms --- *)

(* Every node is a client under open-loop load: its arrival schedule is a
   seeded Poisson stream consumed at the scheduled instants, and the next
   request is scheduled when the current one *arrives*, never when it
   completes — overload builds a queue at the server's module instead of
   throttling the offered load.  Requests go to per-cluster servers (the
   tenant homes) exactly like Echo, with lossy-switch retransmission, and
   each completion records (done - scheduled_arrival) in the client's
   histogram, so the merged tails show queueing delay, fabric crossings
   and fault recovery all at once. *)
let start_serve (c : Config.t) sh nodes_arr modules ~offered_rps =
  let nnodes = c.Config.nprocs in
  let server_of (n : node) =
    let nclusters = Config.clusters c in
    let cluster =
      if nclusters > 1 && Rng.int n.rng 100 < 20 then
        (Config.cluster_of c n.id + 1 + Rng.int n.rng (nclusters - 1)) mod nclusters
      else Config.cluster_of c n.id
    in
    min (cluster * c.Config.cluster_size) (nnodes - 1)
  in
  (* One arrival generator per node, created in node order off the node's
     own stream — shard- and domain-independent like every other draw. *)
  let gens =
    Array.map
      (fun n -> Arrivals.create ~rng:n.rng (Arrivals.Poisson { rate_rps = offered_rps }))
      nodes_arr
  in
  let rec arrive (n : node) (_now : int) =
    if n.ops_left > 0 then begin
      n.ops_left <- n.ops_left - 1;
      (* Open loop: commit to the next arrival before serving this one. *)
      if n.ops_left > 0 then
        Shard.schedule sh ~node:n.id ~delay:(Arrivals.next_gap_ns gens.(n.id)) (arrive n);
      let dst = server_of n in
      let words = 2 + Rng.int n.rng 6 in
      let issue = Shard.now sh ~node:n.id in
      let wire =
        c.Config.port_op_ns + (words * c.Config.t_block_word)
        + (match Config.hop c ~src:n.id ~dst with
          | Config.Cross -> words * c.Config.t_cross_block_extra
          | Config.Local | Config.Intra -> 0)
      in
      let finish (done_at : int) =
        n.rpcs <- n.rpcs + 1;
        n.words <- n.words + (2 * words);
        n.latency_ns <- n.latency_ns + (done_at - issue);
        Hist.record n.hist (done_at - issue)
      in
      let serve (arrival : int) =
        let server = nodes_arr.(dst) in
        server.served <- server.served + 1;
        if dst = n.id then finish (arrival + c.Config.port_op_ns)
        else begin
          let q =
            Xbar.access ?inject:server.inject c modules ~now:arrival ~proc:n.id
              ~mem_module:dst Xbar.Read ~words:1
          in
          Shard.post sh ~src:dst ~dst:n.id ~delay:(max wire (q + c.Config.port_op_ns))
            finish
        end
      in
      let rec send ~attempt =
        match n.inject with
        | None -> Shard.post sh ~src:n.id ~dst ~delay:wire serve
        | Some inj ->
          if Inject.rpc_drop inj ~attempt then begin
            n.retries <- n.retries + 1;
            Inject.note_rpc_retry inj;
            Shard.schedule sh ~node:n.id ~delay:(Inject.rpc_retrans inj ~attempt)
              (fun (_ : int) -> send ~attempt:(attempt + 1))
          end
          else Shard.post sh ~src:n.id ~dst ~delay:wire serve
      in
      send ~attempt:0
    end
  in
  Array.iter
    (fun n ->
      Shard.schedule sh ~node:n.id ~delay:(Arrivals.next_gap_ns gens.(n.id)) (arrive n))
    nodes_arr

(* --- fingerprinting and the driver --- *)

let fnv_prime = 0x100000001b3L

let run ?check ?(shards = 1) ?(domains = 1) ?(inject_rate = 0.0) ?(seed = 42L)
    ?(ops_per_node = 50) ?(offered_rps = 25_000.0) ~config workload =
  let c : Config.t = config in
  let sh =
    Shard.create ?check ~nodes:c.Config.nprocs ~shards
      ~lookahead:(lookahead c workload) ()
  in
  let nodes_arr = make_nodes c ~seed ~inject_rate ~ops_per_node in
  let modules = Array.map (fun n -> n.mmodule) nodes_arr in
  (match workload with
  | Traffic -> start_traffic c sh nodes_arr modules
  | Storm -> start_storm c sh nodes_arr
  | Echo -> start_echo c sh nodes_arr modules
  | Serve -> start_serve c sh nodes_arr modules ~offered_rps);
  Shard.run ~domains sh;
  let h = ref 0xcbf29ce484222325L in
  let mixin v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  let acc = ref (0, 0, 0, 0, 0, 0, 0, 0) in
  Array.iter
    (fun n ->
      mixin n.id;
      mixin n.accesses;
      mixin n.words;
      mixin n.latency_ns;
      mixin n.remote;
      mixin n.cross;
      mixin n.ipis;
      mixin n.acks;
      mixin n.retries;
      mixin n.rpcs;
      mixin n.served;
      mixin (Memmodule.requests n.mmodule);
      mixin (Memmodule.total_busy_ns n.mmodule);
      mixin (Memmodule.total_wait_ns n.mmodule);
      String.iter (fun ch -> mixin (Char.code ch)) (Hist.fingerprint n.hist);
      (match n.inject with
      | None -> ()
      | Some inj -> String.iter (fun ch -> mixin (Char.code ch)) (Inject.fingerprint inj));
      let a, w, r, x, i, t, p, f = !acc in
      acc :=
        ( a + n.accesses,
          w + n.words,
          r + n.remote,
          x + n.cross,
          i + n.ipis,
          t + n.retries,
          p + n.rpcs,
          f + (match n.inject with None -> 0 | Some inj -> Inject.faults_injected inj) ))
    nodes_arr;
  mixin (Shard.events_processed sh);
  mixin (Shard.clock sh);
  let accesses, words, remote, cross, ipis, retries, rpcs, faults = !acc in
  let denom = max 1 (accesses + rpcs) in
  let merged = Hist.create ~precision_bits:5 () in
  Array.iter (fun n -> Hist.merge ~into:merged n.hist) nodes_arr;
  {
    workload = workload_name workload;
    nodes = c.Config.nprocs;
    run_shards = Shard.shards sh;
    (* the effective width: [drive] clamps the pool to the shard count,
       so a 1-shard run always reports 1 domain regardless of launch -j *)
    run_domains = max 1 (min domains (Shard.shards sh));
    events = Shard.events_processed sh;
    windows = Shard.windows sh;
    clock = Shard.clock sh;
    accesses;
    words;
    remote;
    cross;
    ipis;
    retries;
    rpcs;
    faults;
    avg_latency_ns =
      float_of_int (Array.fold_left (fun s n -> s + n.latency_ns) 0 nodes_arr)
      /. float_of_int denom;
    p50_ns = Hist.p50 merged;
    p95_ns = Hist.p95 merged;
    p99_ns = Hist.p99 merged;
    p999_ns = Hist.p999 merged;
    fingerprint = Printf.sprintf "%016Lx" !h;
  }
