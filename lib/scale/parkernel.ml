(* The PLATINUM kernel itself on the sharded engine: one complete kernel
   simulation per node — its own {!Platinum_sim.Engine}, its own
   {!Platinum_kernel.Kernel} over a one-processor run-queue slice, its own
   fault sub-plane — advanced in parallel by {!Platinum_sim.Shard.host}.

   Coherence-visible state is partitioned by home node (DESIGN.md §4j):
   every page has one home; the home holds the authoritative data, the
   holder set and the page version, and is the only node that ever mutates
   them.  Remote reads replicate a page copy to the reader; writes and
   read-modify-writes always execute at the home, shooting down replicas
   first (invalidation IPIs with ack-timeout retry, exactly the §3.3
   protocol shape).  Every one of those protocol steps crosses nodes as an
   {!Platinum_sim.Engine.post}, which the hosted router turns into a
   mailbox message — no node ever touches another node's state directly,
   which is both the determinism argument and the domain-safety argument.

   Latency model: a message's network transit is the uncontended word (or
   IPI) cost for the hop it takes; service at the home is charged against
   the home module's queue ({!Platinum_machine.Xbar.access}, which touches
   only the target module — the single-writer rule holds because module i
   is only ever served by node i's events).  Request messages can be
   dropped by the sender's fault plane ({!Platinum_sim.Inject.rpc_drop})
   and are retransmitted on a backoff timer; invalidation IPIs go through
   {!Platinum_sim.Inject.ipi_fault} with the bounded-adversary guarantee
   that the final attempt always delivers.

   Address spaces are GB-scale and sparse: page tables on both sides are
   chunked {!Platinum_core.Flat} tables and home page data arrays are
   allocated on first touch, so resident memory is proportional to the
   touched footprint, not the address span. *)

module Engine = Platinum_sim.Engine
module Shard = Platinum_sim.Shard
module Inject = Platinum_sim.Inject
module Rng = Platinum_sim.Rng
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Xbar = Platinum_machine.Xbar
module Memmodule = Platinum_machine.Memmodule
module Memtxn = Platinum_core.Memtxn
module Flat = Platinum_core.Flat
module Memsys = Platinum_kernel.Memsys
module Kernel = Platinum_kernel.Kernel
module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type workload =
  | Jacobi
  | Gauss
  | Rpc_echo

let workload_name = function
  | Jacobi -> "jacobi"
  | Gauss -> "gauss"
  | Rpc_echo -> "rpc_echo"

let all_workloads = [ Jacobi; Gauss; Rpc_echo ]
let lookahead = Config.lookahead_ns

(* --- address-space layout ---

   Low pages are the shared control region (barrier words), homed at node
   0.  The data region starts at [data_base_page]; workload row [r] lives
   at page [data_base_page + r * spages], homed at node [r mod n] — with
   [spages] > 1 the rows spread over an address span far larger than the
   touched footprint (the GB-scale variant).  Each node's private bump
   arena sits above the data region. *)

let data_base_page = 8
let arena_pages_per_node = 4096
let word_mask = 0xFFFFFFFF

(* --- per-node protocol state --- *)

type counters = {
  mutable reads : int;  (* completed read transactions *)
  mutable writes : int;  (* completed write/rmw transactions *)
  mutable local_hits : int;  (* served from a replica or the own home *)
  mutable remote_ops : int;  (* requests sent to another node *)
  mutable replications : int;  (* page copies installed here *)
  mutable discards : int;  (* in-flight copies discarded as stale *)
  mutable invalidations : int;  (* replicas shot down here *)
  mutable shootdowns : int;  (* invalidation rounds initiated at this home *)
  mutable ipis : int;  (* IPI send attempts from this home *)
  mutable retrans : int;  (* dropped requests retransmitted *)
  mutable rpcs : int;  (* completed echo round trips (client side) *)
  mutable words : int;  (* data words moved for this node's traffic *)
}

let make_counters () =
  {
    reads = 0;
    writes = 0;
    local_hits = 0;
    remote_ops = 0;
    replications = 0;
    discards = 0;
    invalidations = 0;
    shootdowns = 0;
    ipis = 0;
    retrans = 0;
    rpcs = 0;
    words = 0;
  }

(* One request queued (or in flight) for service at a page's home. *)
type pend = {
  p_txn : Memtxn.t;
  p_src : int;
  p_page : int;
  p_complete : Memtxn.result -> unit;  (* runs on [p_src]'s engine *)
}

(* Home-side page record: authoritative data, holder set, version.  [busy]
   marks a shootdown in flight — arriving requests queue behind it, which
   serializes all traffic on the page for the duration (the home is the
   page's serialization point, as the Cmap is in the real kernel). *)
type hpage = {
  mutable hdata : int array;  (* [||] until first touch *)
  mutable hversion : int;
  hholders : Bytes.t;
  mutable nholders : int;
  mutable hbusy : bool;
  hwaiting : pend Queue.t;
}

type replica = { rdata : int array }

type node = {
  id : int;
  engine : Engine.t;
  mutable kernel : Kernel.t option;
  inject : Inject.t option;
  homes : hpage Flat.t;  (* vpage -> home record, for pages homed here *)
  replicas : replica Flat.t;  (* vpage -> read copy installed here *)
  pfloor : int Flat.t;  (* vpage -> newest version invalidated here *)
  c : counters;
  mutable arena_next : int;
}

type pm = {
  cfg : Config.t;
  machine : Machine.t;
  mods : Memmodule.t array;
  nodes : node array;
  home_of : int -> int;  (* vpage -> home node *)
  pw : int;  (* words per page *)
  la : int;  (* conservative lookahead, ns *)
}

(* --- message timing --- *)

let net_delay pm ~src ~dst =
  max pm.la (Xbar.uncontended_word_ns pm.cfg Xbar.Read ~hop:(Config.hop pm.cfg ~src ~dst))

let ipi_delay pm ~src ~dst =
  let extra =
    match Config.hop pm.cfg ~src ~dst with
    | Config.Cross -> pm.cfg.Config.ipi_cross_extra
    | Config.Local | Config.Intra -> 0
  in
  max pm.la (pm.cfg.Config.ipi_send_ns + extra)

(* --- transaction shape --- *)

(* The one-page restriction: a distributed transaction must fall within a
   single page so it has a single home.  Strides and page-straddling
   blocks are declined (the workloads never issue them; a caller that does
   gets the synchronous path's [Invalid_argument]). *)
let txn_page pm = function
  | Memtxn.Read { vaddr } | Memtxn.Write { vaddr; _ } | Memtxn.Rmw { vaddr; _ } ->
    Some (vaddr / pm.pw)
  | Memtxn.Block_read { vaddr; len } ->
    if len >= 1 && vaddr / pm.pw = (vaddr + len - 1) / pm.pw then Some (vaddr / pm.pw)
    else None
  | Memtxn.Block_write { vaddr; data } ->
    let len = Array.length data in
    if len >= 1 && vaddr / pm.pw = (vaddr + len - 1) / pm.pw then Some (vaddr / pm.pw)
    else None
  | Memtxn.Stride_read _ | Memtxn.Stride_write _ -> None

let txn_words = Memtxn.data_words

let read_result pm arr page = function
  | Memtxn.Read { vaddr } -> Memtxn.Word arr.(vaddr - (page * pm.pw))
  | Memtxn.Block_read { vaddr; len } -> Memtxn.Words (Array.sub arr (vaddr - (page * pm.pw)) len)
  | _ -> assert false

(* --- home-side service --- *)

let get_hpage pm h page =
  let nh = pm.nodes.(h) in
  match Flat.find nh.homes page with
  | Some hp -> hp
  | None ->
    let hp =
      {
        hdata = [||];
        hversion = 0;
        hholders = Bytes.make (Array.length pm.nodes) '\000';
        nholders = 0;
        hbusy = false;
        hwaiting = Queue.create ();
      }
    in
    Flat.set nh.homes page hp;
    hp

let ensure_data pm hp = if Array.length hp.hdata = 0 then hp.hdata <- Array.make pm.pw 0

(* Grant a page copy to a remote reader.  The holder bit is set at grant
   time; the copy installs at the reader when the reply lands.  A
   shootdown racing ahead of the reply is caught by the version floor:
   the IPI records the newest invalidated version at the target, and an
   arriving copy at or below the floor is discarded instead of installed
   (the read itself still completes — it is ordered before the write). *)
let grant_copy pm h hp p =
  let nh = pm.nodes.(h) in
  let now = Engine.now nh.engine in
  let lat =
    Xbar.access ?inject:nh.inject pm.cfg pm.mods ~now ~proc:p.p_src ~mem_module:h Xbar.Read
      ~words:pm.pw
  in
  let snapshot = Array.copy hp.hdata in
  let version = hp.hversion in
  if Bytes.get hp.hholders p.p_src = '\000' then begin
    Bytes.set hp.hholders p.p_src '\001';
    hp.nholders <- hp.nholders + 1
  end;
  let delay = max (net_delay pm ~src:h ~dst:p.p_src) lat in
  Engine.post nh.engine ~src:h ~dst:p.p_src ~delay (fun () ->
      let ns = pm.nodes.(p.p_src) in
      let floor = match Flat.find ns.pfloor p.p_page with Some f -> f | None -> -1 in
      if version > floor then begin
        Flat.set ns.replicas p.p_page { rdata = snapshot };
        ns.c.replications <- ns.c.replications + 1;
        ns.c.words <- ns.c.words + pm.pw
      end
      else ns.c.discards <- ns.c.discards + 1;
      p.p_complete (read_result pm snapshot p.p_page p.p_txn))

let rec home_serve pm h p =
  let hp = get_hpage pm h p.p_page in
  if hp.hbusy then Queue.push p hp.hwaiting
  else begin
    ensure_data pm hp;
    match p.p_txn with
    | Memtxn.Read _ | Memtxn.Block_read _ ->
      if p.p_src = h then begin
        (* the home reads its own page in place; no replica involved *)
        let nh = pm.nodes.(h) in
        let now = Engine.now nh.engine in
        let words = txn_words p.p_txn in
        let lat =
          Xbar.access ?inject:nh.inject pm.cfg pm.mods ~now ~proc:h ~mem_module:h Xbar.Read
            ~words
        in
        let res = read_result pm hp.hdata p.p_page p.p_txn in
        nh.c.words <- nh.c.words + words;
        Engine.schedule_after nh.engine ~delay:(max 1 lat) (fun () -> p.p_complete res)
      end
      else grant_copy pm h hp p
    | Memtxn.Write _ | Memtxn.Rmw _ | Memtxn.Block_write _ ->
      if hp.nholders = 0 then apply_write pm h hp p else start_shootdown pm h hp p
    | Memtxn.Stride_read _ | Memtxn.Stride_write _ -> assert false
  end

(* Apply a write/rmw at the home and send the completion back.  Charged
   against the home module's queue with the requester as the issuing
   processor, so remote writes pay the remote-hop word costs. *)
and apply_write pm h hp p =
  let nh = pm.nodes.(h) in
  let now = Engine.now nh.engine in
  let base = p.p_page * pm.pw in
  let kind, words, res =
    match p.p_txn with
    | Memtxn.Write { vaddr; value } ->
      hp.hdata.(vaddr - base) <- value land word_mask;
      (Xbar.Write, 1, Memtxn.Unit)
    | Memtxn.Rmw { vaddr; f } ->
      let old = hp.hdata.(vaddr - base) in
      hp.hdata.(vaddr - base) <- f old land word_mask;
      (Xbar.Rmw, 1, Memtxn.Word old)
    | Memtxn.Block_write { vaddr; data } ->
      Array.iteri (fun i v -> hp.hdata.(vaddr - base + i) <- v land word_mask) data;
      (Xbar.Write, Array.length data, Memtxn.Unit)
    | _ -> assert false
  in
  hp.hversion <- hp.hversion + 1;
  let lat =
    Xbar.access ?inject:nh.inject pm.cfg pm.mods ~now ~proc:p.p_src ~mem_module:h kind ~words
  in
  nh.c.words <- nh.c.words + words;
  if p.p_src = h then Engine.schedule_after nh.engine ~delay:(max 1 lat) (fun () -> p.p_complete res)
  else
    Engine.post nh.engine ~src:h ~dst:p.p_src ~delay:(max (net_delay pm ~src:h ~dst:p.p_src) lat)
      (fun () -> p.p_complete res)

(* Invalidate every replica before a write: one IPI per holder, acks ride
   back as messages, the page queues everything until the last ack.  IPI
   drops retry on the ack-timeout backoff; the plane's bounded adversary
   delivers the final attempt, so shootdowns always complete. *)
and start_shootdown pm h hp p =
  let nh = pm.nodes.(h) in
  nh.c.shootdowns <- nh.c.shootdowns + 1;
  hp.hbusy <- true;
  let vfloor = hp.hversion in
  let targets = ref [] in
  for t = Array.length pm.nodes - 1 downto 0 do
    if Bytes.get hp.hholders t = '\001' then targets := t :: !targets
  done;
  let expected = List.length !targets in
  let acks = ref 0 in
  let on_ack () =
    incr acks;
    if !acks = expected then begin
      Bytes.fill hp.hholders 0 (Bytes.length hp.hholders) '\000';
      hp.nholders <- 0;
      hp.hbusy <- false;
      apply_write pm h hp p;
      drain_waiting pm h hp
    end
  in
  List.iter (fun t -> send_ipi pm h ~target:t ~page:p.p_page ~vfloor ~attempt:0 ~on_ack) !targets

and send_ipi pm h ~target ~page ~vfloor ~attempt ~on_ack =
  let nh = pm.nodes.(h) in
  nh.c.ipis <- nh.c.ipis + 1;
  let verdict =
    match nh.inject with Some inj -> Inject.ipi_fault inj ~attempt | None -> `Deliver
  in
  match verdict with
  | `Drop ->
    (match nh.inject with
    | Some inj ->
      Inject.note_shootdown_retry inj;
      Engine.schedule_after nh.engine ~deferred:true ~delay:(Inject.ack_timeout inj ~attempt)
        (fun () -> send_ipi pm h ~target ~page ~vfloor ~attempt:(attempt + 1) ~on_ack)
    | None -> assert false (* a plane-free run never drops *))
  | (`Deliver | `Delay _) as d ->
    let extra = match d with `Delay ns -> ns | `Deliver -> 0 in
    Engine.post nh.engine ~src:h ~dst:target ~delay:(ipi_delay pm ~src:h ~dst:target + extra)
      (fun () ->
        let nt = pm.nodes.(target) in
        (match Flat.find nt.replicas page with
        | Some _ ->
          Flat.remove nt.replicas page;
          nt.c.invalidations <- nt.c.invalidations + 1
        | None -> ());
        let floor = match Flat.find nt.pfloor page with Some f -> f | None -> -1 in
        if vfloor > floor then Flat.set nt.pfloor page vfloor;
        Engine.post nt.engine ~src:target ~dst:h ~delay:(net_delay pm ~src:target ~dst:h)
          (fun () -> on_ack ()))

and drain_waiting pm h hp =
  while (not hp.hbusy) && not (Queue.is_empty hp.hwaiting) do
    home_serve pm h (Queue.pop hp.hwaiting)
  done

(* --- requester side --- *)

(* Send a request to a remote home.  The sender's fault plane may drop it
   ([rpc_drop]); recovery is the retransmission timer with exponential
   backoff, and the plane forces delivery on the final attempt. *)
let rec send_request pm s h p ~attempt =
  let ns = pm.nodes.(s) in
  let dropped =
    match ns.inject with Some inj -> Inject.rpc_drop inj ~attempt | None -> false
  in
  if dropped then begin
    ns.c.retrans <- ns.c.retrans + 1;
    match ns.inject with
    | Some inj ->
      Inject.note_rpc_retry inj;
      Engine.schedule_after ns.engine ~deferred:true ~delay:(Inject.rpc_retrans inj ~attempt)
        (fun () -> send_request pm s h p ~attempt:(attempt + 1))
    | None -> assert false
  end
  else
    Engine.post ns.engine ~src:s ~dst:h ~delay:(net_delay pm ~src:s ~dst:h) (fun () ->
        home_serve pm h p)

(* The {!Memsys.remote} hook for node [s]: adopt every valid single-page
   transaction and serve it through the protocol; decline the rest so the
   synchronous path reports the error. *)
let try_remote pm s txn ~complete =
  match Memtxn.validate txn with
  | exception _ -> false
  | () -> (
    match txn_page pm txn with
    | None -> false
    | Some page ->
      let ns = pm.nodes.(s) in
      let h = pm.home_of page in
      let p = { p_txn = txn; p_src = s; p_page = page; p_complete = complete } in
      (match txn with
      | Memtxn.Read _ | Memtxn.Block_read _ ->
        ns.c.reads <- ns.c.reads + 1;
        if h = s then begin
          ns.c.local_hits <- ns.c.local_hits + 1;
          home_serve pm s p
        end
        else (
          match Flat.find ns.replicas page with
          | Some r ->
            (* steady-state hit: served from the local copy *)
            ns.c.local_hits <- ns.c.local_hits + 1;
            let words = txn_words txn in
            let now = Engine.now ns.engine in
            let lat =
              Xbar.access ?inject:ns.inject pm.cfg pm.mods ~now ~proc:s ~mem_module:s
                Xbar.Read ~words
            in
            ns.c.words <- ns.c.words + words;
            let res = read_result pm r.rdata page txn in
            Engine.schedule_after ns.engine ~delay:(max 1 lat) (fun () -> complete res)
          | None ->
            ns.c.remote_ops <- ns.c.remote_ops + 1;
            send_request pm s h p ~attempt:0)
      | Memtxn.Write _ | Memtxn.Rmw _ | Memtxn.Block_write _ ->
        ns.c.writes <- ns.c.writes + 1;
        if h = s then begin
          ns.c.local_hits <- ns.c.local_hits + 1;
          home_serve pm s p
        end
        else begin
          ns.c.remote_ops <- ns.c.remote_ops + 1;
          send_request pm s h p ~attempt:0
        end
      | Memtxn.Stride_read _ | Memtxn.Stride_write _ -> assert false);
      true)

(* --- the per-node memory system --- *)

let memsys_for pm s arena_base_word =
  let ns = pm.nodes.(s) in
  ns.arena_next <- arena_base_word;
  let alloc ~zone:_ ~words ~page_aligned =
    let a =
      if page_aligned then (ns.arena_next + pm.pw - 1) / pm.pw * pm.pw else ns.arena_next
    in
    if a + words > arena_base_word + (arena_pages_per_node * pm.pw) then
      failwith "Parkernel: node arena exhausted";
    ns.arena_next <- a + words;
    a
  in
  {
    Memsys.page_words = pm.pw;
    submit =
      (fun ~now:_ ~proc:_ ~aspace:_ txn ->
        Memtxn.validate txn;
        invalid_arg
          "Parkernel: stride and page-straddling transactions are not supported on \
           distributed memory");
    new_aspace = (fun () -> invalid_arg "Parkernel: one address space per machine");
    new_zone = (fun ~aspace:_ ~name:_ ~pages:_ -> 0);
    alloc;
    alloc_pages = (fun ~zone ~pages -> alloc ~zone ~words:(pages * pm.pw) ~page_aligned:true);
    new_segment = (fun ~name:_ ~pages:_ -> invalid_arg "Parkernel: no segments");
    map_segment = (fun ~aspace:_ ~segment:_ -> invalid_arg "Parkernel: no segments");
    advise = (fun ~now:_ ~proc:_ ~aspace:_ ~vaddr:_ ~len:_ _ -> 0);
    migrate_cost = (fun ~now:_ ~from_proc:_ ~to_proc:_ -> pm.cfg.Config.thread_migrate_ns);
    describe = (fun () -> "parmem: home-partitioned distributed coherent memory");
    fastpath = None;
    remote =
      Some
        {
          Memsys.try_remote =
            (fun ~now:_ ~proc:_ ~aspace:_ txn ~complete -> try_remote pm s txn ~complete);
        };
  }

(* --- the shared barrier (control pages, homed at node 0) ---

   Count and generation words live on separate pages so arrival rmws do
   not shoot down the spinners' generation replicas; only the release
   write does, which is exactly the invalidation that lets them see it. *)

let barrier_count_addr = 0
let barrier_gen_addr pw = pw

let barrier ~parties ~pw () =
  let gen_addr = barrier_gen_addr pw in
  let g = Api.read gen_addr in
  let arrived = Api.rmw barrier_count_addr (fun v -> v + 1) + 1 in
  if arrived = parties then begin
    Api.write barrier_count_addr 0;
    Api.write gen_addr ((g + 1) land word_mask)
  end
  else Sync.spin_until (fun () -> Api.read gen_addr <> g)

(* --- results --- *)

type result = {
  workload : string;
  nodes : int;
  run_shards : int;
  run_domains : int;
  events : int;
  windows : int;
  clock : int;
  reads : int;
  writes : int;
  replications : int;
  invalidations : int;
  shootdowns : int;
  ipis : int;
  retries : int;
  rpcs : int;
  faults : int;
  words : int;
  touched_pages : int;
  replica_pages : int;
  span_words : int;
  setup_ms : float;
  verified : bool;
  fingerprint : string;
}

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

(* --- workload construction --- *)

let row_page ~spages r = data_base_page + (r * spages)
let row_addr pm ~spages r = row_page ~spages r * pm.pw
let seed_cell r c = (((r * 1103515245) + (c * 12345)) land 0xFFFF) + 1

let run ?check ?(shards = 1) ?(domains = 1) ?(inject_rate = 0.0) ?(seed = 42L) ?(iters = 6)
    ?(ops_per_node = 32) ?(width = 128) ?(span_words = 0) ~config:(cfg : Config.t) workload =
  let t0 = Sys.time () in
  let n = cfg.Config.nprocs in
  let pw = cfg.Config.page_words in
  if width < 1 || width > pw then invalid_arg "Parkernel.run: width must be in [1, page_words]";
  if iters < 1 then invalid_arg "Parkernel.run: iters must be >= 1";
  (* row placement: stretch rows over at least [span_words] of address span *)
  let spages = max 1 ((span_words + (n * pw) - 1) / (n * pw)) in
  let data_pages = n * spages in
  let arena_base = data_base_page + data_pages in
  let home_of page =
    if page < data_base_page then 0
    else if page < arena_base then (page - data_base_page) / spages mod n
    else min (n - 1) ((page - arena_base) / arena_pages_per_node)
  in
  let machine = Machine.create cfg in
  let master = Rng.create seed in
  let nodes =
    Array.init n (fun id ->
        let _rng = Rng.split master in
        let inject =
          if inject_rate > 0.0 then
            Some
              (Inject.create (Inject.config ~seed:(Rng.next_int64 master) ~rate:inject_rate ()))
          else begin
            (* keep the master stream identical whether or not a plane is
               attached at this rate *)
            ignore (Rng.next_int64 master);
            None
          end
        in
        {
          id;
          engine = Engine.create ();
          kernel = None;
          inject;
          homes = Flat.create ();
          replicas = Flat.create ();
          pfloor = Flat.create ();
          c = make_counters ();
          arena_next = 0;
        })
  in
  let pm =
    {
      cfg;
      machine;
      mods = Machine.modules machine;
      nodes;
      home_of;
      pw;
      la = Config.lookahead_ns cfg;
    }
  in
  (* per-node kernels over one-processor run-queue slices *)
  Array.iter
    (fun nd ->
      let memsys = memsys_for pm nd.id ((arena_base + (nd.id * arena_pages_per_node)) * pw) in
      nd.kernel <-
        Some (Kernel.create ~slice:(nd.id, 1) ~engine:nd.engine ~machine ~memsys ()))
    nodes;
  (* pre-seed the grid rows directly into their home pages (setup time,
     cost-free: the simulation starts with the data already placed) *)
  let is_grid = match workload with Jacobi | Gauss -> true | Rpc_echo -> false in
  let grid = Array.init n (fun r -> Array.init width (fun c -> seed_cell r c)) in
  if is_grid then
    Array.iteri
      (fun r row ->
        let hp = get_hpage pm (home_of (row_page ~spages r)) (row_page ~spages r) in
        ensure_data pm hp;
        Array.blit row 0 hp.hdata 0 width)
      grid;
  (* host the engines: routers install here, before any thread exists, so
     even setup-time posts would take the mailbox path *)
  let hosted = Shard.host ?check ~shards ~lookahead:pm.la (Array.map (fun nd -> nd.engine) nodes) in
  (* the workload threads *)
  let kernel_of nd = match nd.kernel with Some k -> k | None -> assert false in
  (match workload with
  | Jacobi ->
    Array.iter
      (fun nd ->
        let r = nd.id in
        ignore
          (Kernel.spawn (kernel_of nd) ~proc:r (fun () ->
               let own_addr = row_addr pm ~spages r in
               for _it = 1 to iters do
                 let left = Api.block_read (row_addr pm ~spages ((r + n - 1) mod n)) width in
                 let right = Api.block_read (row_addr pm ~spages ((r + 1) mod n)) width in
                 let own = Api.block_read own_addr width in
                 barrier ~parties:n ~pw ();
                 let next =
                   Array.init width (fun c -> (left.(c) + right.(c) + own.(c)) / 3 land word_mask)
                 in
                 Api.block_write own_addr next;
                 barrier ~parties:n ~pw ()
               done)))
      nodes
  | Gauss ->
    Array.iter
      (fun nd ->
        let r = nd.id in
        ignore
          (Kernel.spawn (kernel_of nd) ~proc:r (fun () ->
               let own_addr = row_addr pm ~spages r in
               for it = 0 to iters - 1 do
                 let pivot = it mod n in
                 let prow = Api.block_read (row_addr pm ~spages pivot) width in
                 barrier ~parties:n ~pw ();
                 let own = Api.block_read own_addr width in
                 let next =
                   Array.init width (fun c -> ((3 * own.(c)) + prow.(c)) land 0xFFFF)
                 in
                 Api.block_write own_addr next;
                 barrier ~parties:n ~pw ()
               done)))
      nodes
  | Rpc_echo ->
    (* pair 2p+1 (client) with 2p (server); request slot homed at the
       server, response slot homed at the client, a sequence word each *)
    let pairs = n / 2 in
    for p = 0 to pairs - 1 do
      let server = 2 * p and client = (2 * p) + 1 in
      let req_addr = row_addr pm ~spages server and resp_addr = row_addr pm ~spages client in
      ignore
        (Kernel.spawn (kernel_of nodes.(server)) ~proc:server (fun () ->
             for i = 1 to ops_per_node do
               Sync.spin_until (fun () -> Api.read req_addr = i);
               let payload = Api.read (req_addr + 1) in
               Api.write (resp_addr + 1) ((payload + i) land word_mask);
               Api.write resp_addr i
             done));
      ignore
        (Kernel.spawn (kernel_of nodes.(client)) ~proc:client (fun () ->
             for i = 1 to ops_per_node do
               let payload = (client * 100_003) + i in
               Api.write (req_addr + 1) payload;
               Api.write req_addr i;
               Sync.spin_until (fun () -> Api.read resp_addr = i);
               if Api.read (resp_addr + 1) <> (payload + i) land word_mask then
                 failwith "Parkernel rpc_echo: payload mismatch";
               nodes.(client).c.rpcs <- nodes.(client).c.rpcs + 1
             done))
    done);
  let setup_ms = (Sys.time () -. t0) *. 1000. in
  Shard.run_hosted ~domains hosted;
  Array.iter (fun nd -> ignore (Kernel.post_run_checks (kernel_of nd))) nodes;
  (* --- verification against a host-side oracle --- *)
  let verified =
    match workload with
    | Jacobi ->
      let g = Array.map Array.copy grid in
      for _it = 1 to iters do
        let prev = Array.map Array.copy g in
        for r = 0 to n - 1 do
          for c = 0 to width - 1 do
            g.(r).(c) <-
              (prev.((r + n - 1) mod n).(c) + prev.((r + 1) mod n).(c) + prev.(r).(c)) / 3
              land word_mask
          done
        done
      done;
      Array.for_all
        (fun nd ->
          let r = nd.id in
          match Flat.find nodes.(home_of (row_page ~spages r)).homes (row_page ~spages r) with
          | Some hp -> Array.for_all (fun c -> hp.hdata.(c) = g.(r).(c)) (Array.init width Fun.id)
          | None -> false)
        nodes
    | Gauss ->
      let g = Array.map Array.copy grid in
      for it = 0 to iters - 1 do
        let pivot = Array.copy g.(it mod n) in
        for r = 0 to n - 1 do
          for c = 0 to width - 1 do
            g.(r).(c) <- ((3 * g.(r).(c)) + pivot.(c)) land 0xFFFF
          done
        done
      done;
      Array.for_all
        (fun nd ->
          let r = nd.id in
          match Flat.find nodes.(home_of (row_page ~spages r)).homes (row_page ~spages r) with
          | Some hp -> Array.for_all (fun c -> hp.hdata.(c) = g.(r).(c)) (Array.init width Fun.id)
          | None -> false)
        nodes
    | Rpc_echo ->
      (* every response slot must hold the last sequence number *)
      let pairs = n / 2 in
      let all = ref true in
      for p = 0 to pairs - 1 do
        let client = (2 * p) + 1 in
        (match Flat.find nodes.(client).homes (row_page ~spages client) with
        | Some hp -> if hp.hdata.(0) <> ops_per_node then all := false
        | None -> if ops_per_node > 0 then all := false);
        if nodes.(client).c.rpcs <> ops_per_node then all := false
      done;
      !all
  in
  (* --- fingerprint: per-node counters, engine history, module stats,
     fault plane, then every home page's version and contents, all in
     node order --- *)
  let h = ref fnv_offset in
  let mixin v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  Array.iter
    (fun nd ->
      let c = nd.c in
      mixin c.reads;
      mixin c.writes;
      mixin c.local_hits;
      mixin c.remote_ops;
      mixin c.replications;
      mixin c.discards;
      mixin c.invalidations;
      mixin c.shootdowns;
      mixin c.ipis;
      mixin c.retrans;
      mixin c.rpcs;
      mixin c.words;
      mixin (Engine.events_processed nd.engine);
      mixin (Engine.now nd.engine);
      mixin (Kernel.context_switches (kernel_of nd));
      mixin (Memmodule.total_busy_ns pm.mods.(nd.id));
      mixin (Memmodule.total_wait_ns pm.mods.(nd.id));
      (match nd.inject with
      | Some inj -> String.iter (fun ch -> mixin (Char.code ch)) (Inject.fingerprint inj)
      | None -> ());
      Flat.iter
        (fun page hp ->
          mixin page;
          mixin hp.hversion;
          Array.iter mixin hp.hdata)
        nd.homes)
    nodes;
  mixin (if verified then 1 else 0);
  let sum f = Array.fold_left (fun acc nd -> acc + f nd) 0 nodes in
  let touched_pages =
    sum (fun nd ->
        let k = ref 0 in
        Flat.iter (fun _ hp -> if Array.length hp.hdata > 0 then incr k) nd.homes;
        !k)
  in
  let eff_shards = Shard.hosted_shards hosted in
  {
    workload = workload_name workload;
    nodes = n;
    run_shards = eff_shards;
    run_domains = max 1 (min domains eff_shards);
    events = Shard.hosted_events hosted;
    windows = Shard.hosted_windows hosted;
    clock = Shard.hosted_clock hosted;
    reads = sum (fun nd -> nd.c.reads);
    writes = sum (fun nd -> nd.c.writes);
    replications = sum (fun nd -> nd.c.replications);
    invalidations = sum (fun nd -> nd.c.invalidations);
    shootdowns = sum (fun nd -> nd.c.shootdowns);
    ipis = sum (fun nd -> nd.c.ipis);
    retries =
      sum (fun nd -> match nd.inject with Some inj -> Inject.retries inj | None -> 0);
    rpcs = sum (fun nd -> nd.c.rpcs);
    faults =
      sum (fun nd -> match nd.inject with Some inj -> Inject.faults_injected inj | None -> 0);
    words = sum (fun nd -> nd.c.words);
    touched_pages;
    replica_pages = sum (fun nd -> Flat.length nd.replicas);
    span_words = (arena_base - data_base_page) * pw;
    setup_ms;
    verified;
    fingerprint = Printf.sprintf "%016Lx" !h;
  }
