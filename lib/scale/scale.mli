(** Message-level workloads for machines past the Butterfly.

    The kernel simulation charges cross-node costs arithmetically inside
    one event; these workloads instead decompose them into real messages
    over the sharded engine ({!Platinum_sim.Shard}): a remote word access
    is a request event at the home node — served against the home module's
    queue, through the home node's fault plane — and a response event back;
    a shootdown is an IPI event per target with the ack riding back; an
    RPC is a request/response pair against per-cluster servers.  All of it
    flows through the shard mailboxes, which is what lets one simulation
    spread over OCaml 5 domains and scale to hundreds or thousands of
    nodes ({!Platinum_machine.Config.hierarchical}).

    Determinism contract: a run is a pure function of
    [(workload, config, seed, inject_rate, ops_per_node)] — the shard
    count and domain count never change the result, only the wall-clock
    time.  [test_parshard.ml] pins {!result.fingerprint} across
    shards × domains grids, with the window self-checks armed and with
    fault injection on. *)

type workload =
  | Traffic  (** remote/local word traffic served at the home module *)
  | Storm  (** shootdown IPI storms with lost/delayed-IPI recovery *)
  | Echo  (** RPC echo against per-cluster servers, with retransmission *)
  | Serve
      (** open-loop request serving: seeded Poisson arrivals per node
          ({!Platinum_sim.Arrivals}), per-cluster servers with
          retransmission, and per-node latency histograms
          ({!Platinum_stats.Hist}) whose merged tails land in
          {!result.p50_ns}..{!result.p999_ns} *)

val workload_name : workload -> string
val all_workloads : workload list

val lookahead : Platinum_machine.Config.t -> workload -> int
(** The conservative window width this workload runs under: the minimum
    cross-node delay of the messaging primitive it uses (word trip, IPI
    send, or port operation). *)

type result = {
  workload : string;
  nodes : int;
  run_shards : int;  (** effective shard count (clamped to [nodes]) *)
  run_domains : int;
  events : int;  (** events executed across all shards *)
  windows : int;  (** conservative synchronization windows taken *)
  clock : int;  (** final simulated time, ns *)
  accesses : int;  (** completed word-burst accesses (Traffic) *)
  words : int;  (** simulated words moved *)
  remote : int;  (** accesses served by a remote home node *)
  cross : int;  (** of those, how many crossed the fabric *)
  ipis : int;  (** IPI send attempts (Storm) *)
  retries : int;  (** recovery retransmissions (Storm + Echo) *)
  rpcs : int;  (** completed RPC round trips (Echo) *)
  faults : int;  (** faults the planes injected *)
  avg_latency_ns : float;  (** mean completed-operation latency *)
  p50_ns : int;  (** latency percentiles over the merged histograms *)
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;  (** (all 0 for workloads that record no latencies) *)
  fingerprint : string;
      (** FNV-1a fold over every node's counters, module statistics,
          latency histogram and fault-plane fingerprint, in node order —
          byte-identical across shard and domain counts. *)
}

val run :
  ?check:bool ->
  ?shards:int ->
  ?domains:int ->
  ?inject_rate:float ->
  ?seed:int64 ->
  ?ops_per_node:int ->
  ?offered_rps:float ->
  config:Platinum_machine.Config.t ->
  workload ->
  result
(** Run one workload to quiescence.  [shards] (default 1) splits the node
    set into contiguous blocks; [domains] (default 1) drives them in
    parallel — neither affects the result.  [inject_rate] > 0 attaches a
    deterministic per-node fault plane ({!Platinum_sim.Inject}) exercising
    the IPI-retry and RPC-retransmission recovery paths.  [offered_rps]
    (default 25000, [Serve] only) is each node's open-loop arrival rate.
    [check] arms the shard window self-checks (defaults from
    [PLATINUM_CHECK=1]). *)
