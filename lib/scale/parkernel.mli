(** The PLATINUM kernel on the sharded engine: domain-parallel coherence
    simulation with GB-scale address spaces.

    Where {!Scale} decomposes {e synthetic} workloads into messages, this
    module runs the kernel simulation itself under
    {!Platinum_sim.Shard.host}: one complete {!Platinum_kernel.Kernel} per
    node (a one-processor run-queue slice of the shared machine), threads
    programming against the ordinary {!Platinum_kernel.Api}, and a
    home-partitioned distributed coherent memory underneath.  Every page
    has one home node holding the authoritative data, holder set and
    version; remote reads replicate page copies, writes and rmws execute
    at the home behind invalidation IPIs with ack-timeout retry; requests
    can be dropped by the per-node fault planes and are retransmitted.
    Every protocol step crosses nodes as an {!Platinum_sim.Engine.post} —
    a mailbox message under the hosted router — so no node ever touches
    another node's state (DESIGN.md §4j).

    Determinism contract: a run is a pure function of
    [(workload, config, seed, inject_rate, iters, ops_per_node, width,
    span_words)] — the shard count and domain count never change the
    result, only the wall-clock time.  [test_parshard.ml] pins
    {!result.fingerprint} across shards × domains grids, clean and with
    fault injection, with the window self-checks armed.

    Address spaces are sparse: page tables are chunked
    {!Platinum_core.Flat} tables and page frames allocate on first touch,
    so a [span_words] of 2{^27}–2{^30} words costs memory proportional to
    the touched footprint. *)

type workload =
  | Jacobi  (** ring relaxation: neighbor-row replication + own-row shootdowns *)
  | Gauss  (** elimination: pivot-row replication storms (§5.1) *)
  | Rpc_echo  (** request/response over write-at-home message slots *)

val workload_name : workload -> string
val all_workloads : workload list

val lookahead : Platinum_machine.Config.t -> int
(** The conservative window width a hosted run uses:
    {!Platinum_machine.Config.lookahead_ns}. *)

type result = {
  workload : string;
  nodes : int;
  run_shards : int;  (** effective shard count (clamped to [nodes]) *)
  run_domains : int;  (** effective domain count (clamped to shards) *)
  events : int;  (** events executed across all hosted engines *)
  windows : int;  (** conservative synchronization windows taken *)
  clock : int;  (** final simulated time, ns *)
  reads : int;  (** completed read transactions *)
  writes : int;  (** completed write/rmw transactions *)
  replications : int;  (** page copies installed *)
  invalidations : int;  (** replicas shot down *)
  shootdowns : int;  (** invalidation rounds run at the homes *)
  ipis : int;  (** invalidation IPI send attempts *)
  retries : int;  (** recovery retries (IPI + retransmission) *)
  rpcs : int;  (** completed echo round trips *)
  faults : int;  (** faults the planes injected *)
  words : int;  (** simulated data words moved *)
  touched_pages : int;  (** home pages with a frame allocated *)
  replica_pages : int;  (** replicas resident at the end *)
  span_words : int;  (** data-region address span, words *)
  setup_ms : float;  (** host wall time to build the run (not fingerprinted) *)
  verified : bool;  (** simulation output matched the host-side oracle *)
  fingerprint : string;
      (** FNV-1a fold over every node's counters, engine history, module
          statistics, fault plane and home-page contents, in node order —
          byte-identical across shard and domain counts. *)
}

val run :
  ?check:bool ->
  ?shards:int ->
  ?domains:int ->
  ?inject_rate:float ->
  ?seed:int64 ->
  ?iters:int ->
  ?ops_per_node:int ->
  ?width:int ->
  ?span_words:int ->
  config:Platinum_machine.Config.t ->
  workload ->
  result
(** Run one kernel workload to completion.  [shards] (default 1) splits
    the per-node engines into contiguous blocks; [domains] (default 1)
    drives them in parallel — neither affects the result.  [inject_rate]
    > 0 attaches deterministic per-node fault planes (seeded from
    [seed] by the PR 6 split discipline).  [iters] (default 6) is the
    grid-iteration count, [width] (default 128) the row width in words
    (at most a page), [ops_per_node] (default 32) the echo call count per
    pair, and [span_words] (default 0 = compact) stretches the row
    placement over at least that address span — the GB-scale variant.
    [check] arms the window self-checks (defaults from
    [PLATINUM_CHECK=1]).  Raises {!Platinum_kernel.Kernel.Thread_failure}
    / {!Platinum_kernel.Kernel.Deadlock} like a sequential kernel run. *)
