module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type params = {
  n : int;
  nprocs : int;
  compute_ns_per_word : int;
  seed : int;
  verify : bool;
  bulk : bool;
}

let params ?(n = 400) ?(compute_ns_per_word = 3_000) ?(seed = 42) ?(verify = true)
    ?(bulk = true) ~nprocs () =
  if n < 2 then invalid_arg "Gauss_mp.params: n must be at least 2";
  if nprocs < 1 then invalid_arg "Gauss_mp.params: nprocs must be positive";
  { n; nprocs; compute_ns_per_word; seed; verify; bulk }

let to_gauss p =
  {
    Gauss.n = p.n;
    nprocs = p.nprocs;
    compute_ns_per_word = p.compute_ns_per_word;
    seed = p.seed;
    verify = p.verify;
  }

let make p =
  let gp = to_gauss p in
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let n = p.n and nprocs = p.nprocs in
    let owner r = r mod nprocs in
    let rows = Array.init n (fun _ -> Api.alloc ~page_aligned:true n) in
    let szone = Api.new_zone "mp-sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    let inboxes = Array.init nprocs (fun _ -> Api.new_port ()) in
    let worker me =
      (* First touch of this worker's rows.  The page-aligned row buffers
         usually sit a constant distance apart, so bulk mode scatters all
         of them in one strided transaction (elements of n words, one per
         row); non-uniform spacing falls back to per-row block writes. *)
      let my_rows =
        Array.init (if me < n then ((n - 1 - me) / nprocs) + 1 else 0)
          (fun k -> me + (k * nprocs))
      in
      let row_data r = Array.init n (fun j -> Gauss.init_elem gp r j land Gauss.value_mask) in
      let uniform_stride =
        if (not p.bulk) || Array.length my_rows < 2 then None
        else begin
          let d = rows.(my_rows.(1)) - rows.(my_rows.(0)) in
          let ok = ref (d >= n) in
          for k = 2 to Array.length my_rows - 1 do
            if rows.(my_rows.(k)) - rows.(my_rows.(k - 1)) <> d then ok := false
          done;
          if !ok then Some d else None
        end
      in
      (match uniform_stride with
      | Some stride ->
        let data = Array.concat (Array.to_list (Array.map row_data my_rows)) in
        Api.write_stride rows.(my_rows.(0)) ~elem_words:n ~stride data
      | None -> Array.iter (fun r -> Api.block_write rows.(r) (row_data r)) my_rows);
      Sync.Barrier.wait barrier;
      if me = 0 then start_ns := Api.now ();
      (* Pivot slices arrive tagged with their round; out-of-order arrivals
         (a fast downstream owner can overtake a slow broadcast loop) are
         parked until their round comes up. *)
      let pending : (int, int array) Hashtbl.t = Hashtbl.create 8 in
      let rec obtain k =
        match Hashtbl.find_opt pending k with
        | Some piv ->
          Hashtbl.remove pending k;
          piv
        | None ->
          let msg = Api.recv inboxes.(me) in
          let round = msg.(0) in
          let piv = Array.sub msg 1 (Array.length msg - 1) in
          if round = k then piv
          else begin
            Hashtbl.replace pending round piv;
            obtain k
          end
      in
      let broadcast k piv =
        let msg = Array.make (Array.length piv + 1) k in
        Array.blit piv 0 msg 1 (Array.length piv);
        for d = 1 to nprocs - 1 do
          Api.send inboxes.((me + d) mod nprocs) msg
        done
      in
      (* Row 0 is ready as soon as initialization finishes. *)
      if owner 0 = me && nprocs > 1 then broadcast 0 (Api.block_read rows.(0) n);
      for k = 0 to n - 2 do
        let piv =
          if owner k = me then Api.block_read (rows.(k) + k) (n - k)
          else if nprocs = 1 then [||] (* unreachable: owner k = me always *)
          else obtain k
        in
        (* The received slice may start at an earlier column than k (it was
           broadcast when the sender finished updating it); realign. *)
        let piv =
          let extra = Array.length piv - (n - k) in
          if extra > 0 then Array.sub piv extra (n - k) else piv
        in
        let first = k + 1 + ((me - owner (k + 1) + nprocs) mod nprocs) in
        let r = ref first in
        while !r < n do
          let row = Api.block_read (rows.(!r) + k) (n - k) in
          Gauss.eliminate ~row ~piv;
          Api.compute ((n - k) * p.compute_ns_per_word);
          Api.block_write (rows.(!r) + k) row;
          if !r = k + 1 && !r <= n - 2 && nprocs > 1 then broadcast (k + 1) row;
          r := !r + nprocs
        done
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then out.Outcome.work_ns <- Api.now () - !start_ns
    in
    Api.spawn_join_all
      ~procs:(List.init nprocs (fun i -> i))
      (List.init nprocs (fun me _ -> worker me));
    if p.verify then begin
      let reference = Gauss.sequential gp in
      let r = ref 0 in
      while !r < n && out.Outcome.ok do
        let got = Api.block_read rows.(!r) n in
        if got <> reference.(!r) then
          Outcome.fail out "gauss-mp: row %d differs from the sequential oracle" !r;
        incr r
      done
    end
  in
  (out, main)
