(** Message-passing Gaussian elimination (the SMP baseline of §5.1).

    The same computation as {!Gauss}, structured the way LeBlanc's SMP
    library programs were: each worker keeps its rows in memory it
    allocated itself (local after first touch) and the pivot row is
    broadcast explicitly through per-worker ports.  No data page is ever
    shared, so the coherency protocol sees almost no traffic; the cost is
    explicit communication code and one copy per consumer — the 15.3× of
    Figure 1's best curve. *)

type params = {
  n : int;
  nprocs : int;
  compute_ns_per_word : int;
  seed : int;
  verify : bool;
  bulk : bool;
      (** initialize this worker's rows with one strided transaction when
          they are uniformly spaced (default); [false] always writes
          per-row blocks *)
}

val params :
  ?n:int ->
  ?compute_ns_per_word:int ->
  ?seed:int ->
  ?verify:bool ->
  ?bulk:bool ->
  nprocs:int ->
  unit ->
  params

val make : params -> Outcome.t * (unit -> unit)
(** Self-verifies against the same sequential oracle as {!Gauss} (the two
    implementations compute identical matrices). *)
