(** Jacobi iteration on a 2-D grid — a nearest-neighbour sharing pattern.

    A classic Butterfly-era kernel (the paper's §1 promises "a library of
    applications ... with a variety of programming styles that use
    different memory access patterns"; grid relaxation is the canonical
    producer-consumer-at-boundaries pattern).  The grid is row-block
    partitioned; each iteration every thread recomputes its rows from the
    previous iteration's values, so it reads its neighbours' boundary
    rows.  Under PLATINUM those boundary pages are replicated each
    iteration and invalidated when their owner rewrites them — pages that
    live right at the freeze policy's decision boundary: with iterations
    shorter than t1 they freeze (remote boundary reads); longer, they
    keep being replicated.  Integer arithmetic; deterministic (barrier
    per iteration); self-verifies against a sequential oracle. *)

type params = {
  n : int;  (** grid side; the grid is n x n *)
  iters : int;
  nprocs : int;
  compute_ns_per_point : int;
  seed : int;
  verify : bool;
  bulk : bool;
      (** read the three stencil rows as one 3n-word transaction (default);
          [false] replays the original three-block access stream *)
}

val params :
  ?n:int ->
  ?iters:int ->
  ?compute_ns_per_point:int ->
  ?seed:int ->
  ?verify:bool ->
  ?bulk:bool ->
  nprocs:int ->
  unit ->
  params
(** Defaults: 128x128 grid, 12 iterations, 2 µs per point. *)

val make : params -> Outcome.t * (unit -> unit)

val sequential : params -> int array array
(** The oracle. *)
