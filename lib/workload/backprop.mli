(** Recurrent-backpropagation neural-network simulator (§5.3; Figure 6).

    The paper's stress case: written by a newcomer, it parallelizes unit
    updates with a simple for-loop split and relies only on the atomicity
    of memory operations for synchronization — very fine-grain sharing of
    very little data.  The coherent memory system "quickly gives up": the
    shared activation and weight pages are invalidated at fine grain,
    freeze, and stay frozen; speedup remains linear (remote references
    don't contend much at this scale) but each added processor contributes
    only about half a local-memory processor.

    The simulated network is a three-layer encoder (paper: 40 units, 16
    input/output pairs) in fixed-point arithmetic.  Because threads share
    activations without synchronization, the result is
    schedule-dependent (deterministic for a given configuration, as the
    whole simulator is); verification checks boundedness and that training
    moved the weights. *)

type params = {
  units : int;
  patterns : int;
  epochs : int;
  settle_steps : int;  (** forward relaxation steps per pattern *)
  nprocs : int;
  compute_ns_per_connection : int;
  seed : int;
  verify : bool;
  bulk : bool;
      (** batch the inner loops into block/strided transactions (default);
          [false] replays the original per-word access stream *)
}

val params :
  ?units:int ->
  ?patterns:int ->
  ?epochs:int ->
  ?settle_steps:int ->
  ?compute_ns_per_connection:int ->
  ?seed:int ->
  ?verify:bool ->
  ?bulk:bool ->
  nprocs:int ->
  unit ->
  params
(** Defaults: 40 units, 16 patterns, 5 epochs, 2 settle steps, 3 µs of
    arithmetic per connection. *)

val make : params -> Outcome.t * (unit -> unit)
