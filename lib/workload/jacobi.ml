module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type params = {
  n : int;
  iters : int;
  nprocs : int;
  compute_ns_per_point : int;
  seed : int;
  verify : bool;
  bulk : bool;
}

let params ?(n = 128) ?(iters = 12) ?(compute_ns_per_point = 2_000) ?(seed = 11)
    ?(verify = true) ?(bulk = true) ~nprocs () =
  if n < 4 then invalid_arg "Jacobi.params: n must be at least 4";
  if nprocs < 1 || nprocs > n - 2 then invalid_arg "Jacobi.params: bad nprocs";
  { n; iters; nprocs; compute_ns_per_point; seed; verify; bulk }

let mask = 0xFFFFF

let init_elem p i j =
  let h = ((p.seed * 131) + (i * p.n) + j) * 0x9E3779B9 in
  (h lsr 9) land mask

(* new[i][j] = mean of the four neighbours (integer). *)
let relax ~above ~row ~below ~out =
  let n = Array.length row in
  out.(0) <- row.(0);
  out.(n - 1) <- row.(n - 1);
  for j = 1 to n - 2 do
    out.(j) <- (above.(j) + below.(j) + row.(j - 1) + row.(j + 1)) / 4 land mask
  done

let sequential p =
  let n = p.n in
  let g = ref (Array.init n (fun i -> Array.init n (fun j -> init_elem p i j))) in
  for _iter = 1 to p.iters do
    let cur = !g in
    let next =
      Array.init n (fun i ->
          if i = 0 || i = n - 1 then Array.copy cur.(i)
          else begin
            let out = Array.make n 0 in
            relax ~above:cur.(i - 1) ~row:cur.(i) ~below:cur.(i + 1) ~out;
            out
          end)
    in
    g := next
  done;
  !g

(* Interior rows are block-distributed; row r of each generation lives at
   [buf + r*n] in one of two page-aligned buffers. *)
let make p =
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let n = p.n and nprocs = p.nprocs in
    let words = n * n in
    let buf_a = Api.alloc ~page_aligned:true words in
    let buf_b = Api.alloc ~page_aligned:true words in
    let szone = Api.new_zone "jacobi-sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    (* Interior rows 1..n-2 split into contiguous blocks. *)
    let interior = n - 2 in
    let lo me = 1 + (me * interior / nprocs) in
    let hi me = 1 + ((me + 1) * interior / nprocs) - 1 in
    let worker me =
      (* First touch: initialize my rows (worker 0 also owns the border). *)
      if me = 0 then begin
        Api.block_write buf_a (Array.init n (fun j -> init_elem p 0 j));
        Api.block_write (buf_a + ((n - 1) * n)) (Array.init n (fun j -> init_elem p (n - 1) j));
        Api.block_write buf_b (Array.init n (fun j -> init_elem p 0 j));
        Api.block_write (buf_b + ((n - 1) * n)) (Array.init n (fun j -> init_elem p (n - 1) j))
      end;
      for r = lo me to hi me do
        Api.block_write (buf_a + (r * n)) (Array.init n (fun j -> init_elem p r j))
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then start_ns := Api.now ();
      let src = ref buf_a and dst = ref buf_b in
      for _iter = 1 to p.iters do
        for r = lo me to hi me do
          (* Rows r-1, r, r+1 are contiguous: one 3n-word transaction
             replaces three kernel traps when running in bulk mode. *)
          let above, row, below =
            if p.bulk then begin
              let tri = Api.block_read (!src + ((r - 1) * n)) (3 * n) in
              (Array.sub tri 0 n, Array.sub tri n n, Array.sub tri (2 * n) n)
            end
            else
              ( Api.block_read (!src + ((r - 1) * n)) n,
                Api.block_read (!src + (r * n)) n,
                Api.block_read (!src + ((r + 1) * n)) n )
          in
          let fresh = Array.make n 0 in
          relax ~above ~row ~below ~out:fresh;
          Api.compute (n * p.compute_ns_per_point);
          Api.block_write (!dst + (r * n)) fresh
        done;
        (* Everyone must finish reading generation g before anyone starts
           generation g+2 in the same buffer; one barrier suffices for
           Jacobi's two-buffer scheme. *)
        Sync.Barrier.wait barrier;
        let tmp = !src in
        src := !dst;
        dst := tmp
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then out.Outcome.work_ns <- Api.now () - !start_ns
    in
    Api.spawn_join_all
      ~procs:(List.init nprocs (fun i -> i mod nprocs))
      (List.init nprocs (fun me _ -> worker me));
    if p.verify then begin
      let reference = sequential p in
      let final = if p.iters mod 2 = 0 then buf_a else buf_b in
      let r = ref 1 in
      while !r < n - 1 && out.Outcome.ok do
        let got = Api.block_read (final + (!r * n)) n in
        if got <> reference.(!r) then
          Outcome.fail out "jacobi: row %d differs from the oracle" !r;
        incr r
      done
    end
  in
  (out, main)
