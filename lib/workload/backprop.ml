module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type params = {
  units : int;
  patterns : int;
  epochs : int;
  settle_steps : int;
  nprocs : int;
  compute_ns_per_connection : int;
  seed : int;
  verify : bool;
  bulk : bool;
}

let params ?(units = 40) ?(patterns = 16) ?(epochs = 5) ?(settle_steps = 2)
    ?(compute_ns_per_connection = 8_700) ?(seed = 3) ?(verify = true) ?(bulk = true) ~nprocs () =
  if units < 2 then invalid_arg "Backprop.params: need at least 2 units";
  { units; patterns; epochs; settle_steps; nprocs; compute_ns_per_connection; seed; verify; bulk }

(* Fixed-point: values are scaled by 2^10; a crude saturating "sigmoid"
   keeps everything bounded. *)
let scale = 1 lsl 10
let squash v = if v > scale then scale else if v < -scale then -scale else v

let input_bit p pat u = (((p.seed * 31) + (pat * 131) + (u * 17)) * 0x9E3779B9 lsr 7) land 1

let make p =
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let u = p.units and nprocs = p.nprocs in
    (* All network state lives in one zone with no padding: exactly the
       naive layout whose fine-grain write-sharing the paper describes. *)
    let act = Api.alloc u in
    let weights = Api.alloc (u * u) in
    let w i j = weights + (i * u) + j in
    let szone = Api.new_zone "bp-sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    (* Units this worker owns starting from [first]: first, first+nprocs, ... *)
    let owned first = if first >= u then 0 else ((u - 1 - first) / nprocs) + 1 in
    let worker me =
      (* Initialize the slice this worker owns: small deterministic
         weights. *)
      let i = ref me in
      while !i < u do
        let row = Array.init u (fun j -> (((!i * u) + j + p.seed) mod 7) - 3) in
        Api.block_write (w !i 0) row;
        if not p.bulk then Api.write (act + !i) 0;
        i := !i + nprocs
      done;
      (* Bulk mode scatters the activation zeros in one strided write. *)
      if p.bulk && me < u then
        Api.write_stride (act + me) ~stride:nprocs (Array.make (owned me) 0);
      Sync.Barrier.wait barrier;
      if me = 0 then start_ns := Api.now ();
      for _epoch = 1 to p.epochs do
        for pat = 0 to p.patterns - 1 do
          (* Clamp the input layer (first quarter of the units). *)
          let inputs = max 1 (u / 4) in
          if p.bulk then begin
            if me < inputs then begin
              let count = ((inputs - 1 - me) / nprocs) + 1 in
              Api.write_stride (act + me) ~stride:nprocs
                (Array.init count (fun k -> input_bit p pat (me + (k * nprocs)) * scale))
            end
          end
          else begin
            let i = ref me in
            while !i < inputs do
              Api.write (act + !i) (input_bit p pat !i * scale);
              i := !i + nprocs
            done
          end;
          (* Forward relaxation: no synchronization between threads —
             "depending only on the atomicity of memory operations".  Bulk
             mode snapshots the activation vector and the weight row in
             two block reads instead of 2u word traps; the relaxation
             tolerates either granularity of staleness. *)
          for _step = 1 to p.settle_steps do
            let i = ref (inputs + me) in
            while !i < u do
              let sum = ref 0 in
              if p.bulk then begin
                let acts = Api.block_read act u in
                let wrow = Api.block_read (w !i 0) u in
                for j = 0 to u - 1 do
                  sum := !sum + (acts.(j) * wrow.(j) / scale)
                done
              end
              else
                for j = 0 to u - 1 do
                  let a = Api.read (act + j) in
                  let wij = Api.read (w !i j) in
                  sum := !sum + (a * wij / scale)
                done;
              Api.compute (u * p.compute_ns_per_connection);
              Api.write (act + !i) (squash (!sum / 4));
              i := !i + nprocs
            done
          done;
          (* Backward pass: each owner updates its units' weight rows from
             the (shared, unsynchronized) activations. *)
          let outputs = max 1 (u / 4) in
          let i = ref (inputs + me) in
          while !i < u do
            let is_output = !i >= u - outputs in
            let target = if is_output then input_bit p pat (!i - (u - outputs)) * scale else 0 in
            let a_i = Api.read (act + !i) in
            let err = if is_output then target - a_i else a_i / 8 in
            if p.bulk then begin
              let acts = Api.block_read act u in
              let wrow = Api.block_read (w !i 0) u in
              for j = 0 to u - 1 do
                wrow.(j) <- squash (wrow.(j) + (err * acts.(j) / (scale * 16)))
              done;
              Api.block_write (w !i 0) wrow
            end
            else
              for j = 0 to u - 1 do
                let a_j = Api.read (act + j) in
                let wij = Api.read (w !i j) in
                Api.write (w !i j) (squash (wij + (err * a_j / (scale * 16))))
              done;
            Api.compute (u * p.compute_ns_per_connection);
            i := !i + nprocs
          done
        done
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then out.Outcome.work_ns <- Api.now () - !start_ns
    in
    Api.spawn_join_all
      ~procs:(List.init nprocs (fun i -> i))
      (List.init nprocs (fun me _ -> worker me));
    if p.verify then begin
      (* Boundedness + the training actually moved the weights. *)
      let final = Api.block_read weights (u * u) in
      let moved = ref false in
      Array.iteri
        (fun idx v ->
          if abs v > scale then
            Outcome.fail out "backprop: weight %d = %d escaped the fixed-point range" idx v;
          let init = (((idx + p.seed) mod 7) - 3 : int) in
          if v <> init then moved := true)
        final;
      Outcome.require out !moved "backprop: training never changed any weight"
    end
  in
  (out, main)
