(* The static-analysis CI gate (see Platinum_check).  Three modes, one
   exit-code convention: 0 clean, 1 unexempted violations, 2 usage or
   environment errors (missing path, unparseable source, failed seeded
   mutation).

     dune exec bin/lint.exe                   # textual pass over lib/
     dune exec bin/lint.exe -- DIR...         # textual pass over the trees
     dune exec bin/lint.exe -- --ast [DIR...] # all typed-AST rules
     dune exec bin/lint.exe -- --must-catch [DIR...]
                                              # seeded-mutation gate *)

module Lint = Platinum_check.Lint
module Ast_lint = Platinum_check.Ast_lint
module Registry = Platinum_check.Registry

let check_paths dirs =
  let missing = List.filter (fun d -> not (Sys.file_exists d)) dirs in
  if missing <> [] then begin
    List.iter (Printf.eprintf "lint: no such path: %s\n") missing;
    exit 2
  end

let textual dirs =
  check_paths dirs;
  let files = List.concat_map Lint.files_under dirs in
  let findings = Lint.scan_files files in
  let bad = List.filter (fun f -> f.Lint.allowed = None) findings in
  List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
  Format.printf "lint: %d file(s), %d finding(s), %d violation(s)@." (List.length files)
    (List.length findings) (List.length bad);
  if bad <> [] then exit 1

let load_units dirs =
  check_paths dirs;
  try Ast_lint.load_dirs dirs
  with Ast_lint.Parse_error msg ->
    Printf.eprintf "lint: %s\n" msg;
    exit 2

let ast dirs =
  let units = load_units dirs in
  let findings = Registry.run_rules units in
  let bad = Registry.violations findings in
  List.iter (fun f -> Format.printf "%a@." Ast_lint.pp_finding f) findings;
  Format.printf "ast-lint: %d file(s), %d rule(s), %d finding(s), %d violation(s)@."
    (List.length units)
    (List.length Registry.rules)
    (List.length findings) (List.length bad);
  if bad <> [] then exit 1

let must_catch dirs =
  let units = load_units dirs in
  let gates = Registry.mutation_gate units in
  let failed =
    List.fold_left
      (fun failed (g : Registry.gate) ->
        match g.g_result with
        | Ok () ->
          Format.printf "must-catch: PASS %s@." g.g_name;
          failed
        | Error e ->
          Format.printf "must-catch: FAIL %s: %s@." g.g_name e;
          failed + 1)
      0 gates
  in
  if failed > 0 then exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let default d = function [] -> d | dirs -> dirs in
  match args with
  | "--ast" :: rest -> ast (default [ "lib" ] rest)
  | "--must-catch" :: rest -> must_catch (default [ "lib" ] rest)
  | dirs -> textual (default [ "lib" ] dirs)
