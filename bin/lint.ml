(* The domain-safety lint, as a CI gate: scan library code for toplevel
   mutable state (see Platinum_check.Lint).  Exit 1 on any finding that is
   neither Atomic nor explicitly allow-marked.

     dune exec bin/lint.exe            # scans lib/
     dune exec bin/lint.exe -- DIR...  # scans the given trees *)

module Lint = Platinum_check.Lint

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib" ]
    | dirs -> dirs
  in
  let missing = List.filter (fun d -> not (Sys.file_exists d)) dirs in
  if missing <> [] then begin
    List.iter (Printf.eprintf "lint: no such path: %s\n") missing;
    exit 2
  end;
  let files = List.concat_map Lint.files_under dirs in
  let findings = Lint.scan_files files in
  let bad = List.filter (fun f -> f.Lint.allowed = None) findings in
  List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
  Format.printf "lint: %d file(s), %d finding(s), %d violation(s)@." (List.length files)
    (List.length findings) (List.length bad);
  if bad <> [] then exit 1
